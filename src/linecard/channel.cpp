#include "linecard/channel.hpp"

namespace p5::linecard {

namespace {

/// Every way the far end can eat a frame without delivering it: receiver
/// dispositions (FCS/abort, address filter, malformed, oversize) plus the
/// shared-memory receive ring dropping a finished frame. Tier-agnostic: both
/// device tiers keep the identical ledger (enforced by the DiffOracle).
u64 far_end_losses(core::P5SonetLink& link) {
  const core::RxCounters c = link.endpoint_b().rx_counters();
  return c.frames_bad + c.addr_filtered + c.malformed + c.oversize +
         link.endpoint_b().rx_overflow_drops();
}

}  // namespace

Channel::Channel(unsigned index, const ChannelConfig& cfg, ChannelTelemetry& telemetry)
    : index_(index),
      cfg_(cfg),
      tel_(telemetry),
      link_(std::make_unique<core::P5SonetLink>(cfg.p5, cfg.sts, cfg.line,
                                                core::resolve_device_tier(cfg.tier))),
      source_(cfg.ring_capacity),
      fabric_(cfg.ring_capacity),
      egress_(cfg.ring_capacity) {
  // Hoist escape-table derivation out of the fabric hot loop: the arena's
  // cached engines are primed here, at construction (config-change time),
  // from the tributary's programmed ACCM — previously the first fabric-side
  // re-frame derived them mid-burst. The cache keys on the ACCM, so an OAM
  // reprogramming still re-derives exactly once.
  (void)arena_.escape_engine(link_->host_escape_engine().accm());
  (void)arena_.rx_escape_engine();
}

bool Channel::step() {
  bool work = false;

  // Retry egress frames the ring rejected on an earlier slice, in order.
  while (!egress_spill_.empty()) {
    if (!egress_.try_push(std::move(egress_spill_.front()))) break;
    egress_spill_.pop_front();
    work = true;
  }

  tel_.note_ingress_depth(source_.size_approx() + fabric_.size_approx());

  // Admit at most one descriptor per slice: sources first (fresh traffic),
  // then frames the fabric switched down this tributary.
  if (!pending_) {
    if (auto d = source_.try_pop()) {
      pending_ = std::move(d);
    } else if (auto d = fabric_.try_pop()) {
      pending_ = std::move(d);
    }
  }
  if (pending_) {
    if (link_->endpoint_a().tx_has_room(pending_->payload.size())) {
      const std::size_t n = pending_->payload.size();
      inflight_dest_.push_back(pending_->fabric_dest ? pending_->fabric_dest : egress_dest_);
      (void)link_->endpoint_a().submit_datagram(pending_->protocol,
                                                std::move(pending_->payload));
      tel_.on_ingress(n);
      ++submitted_;
      pending_.reset();
      work = true;
    } else {
      // Device transmit ring full — hold the descriptor and report the
      // backpressure; the SPSC rings upstream of us fill next.
      tel_.ring_full_stall();
    }
  }

  // Pump the line only while something is actually in flight; an idle
  // channel must not burn a SONET frame's worth of cycle-model time.
  if (in_flight() > 0) {
    link_->exchange_frames(1);
    ++stale_exchanges_;
    work = true;
  }

  reap();

  // Frames the far end junked (line errors, filters, rx-pool overflow) never
  // reach reap(). Note the junk events for telemetry and drop their
  // destination bookkeeping, but do NOT fold them into delivered_: junk
  // events are not 1:1 with lost descriptors (a flipped flag can split one
  // frame into two bad fragments, or merge two frames into one), so counting
  // them as deliveries would corrupt the loss accounting. The write-off
  // below settles the in-flight count exactly instead.
  const u64 losses = far_end_losses(*link_);
  if (losses > losses_seen_) {
    const u64 fresh = losses - losses_seen_;
    tel_.add_fcs_errors(fresh);
    // Best-effort FIFO discard of the junked frames' destinations; with line
    // errors the pairing is approximate, which only misroutes already-lost
    // frames' bookkeeping, never payload bytes.
    for (u64 i = 0; i < fresh && !inflight_dest_.empty(); ++i) inflight_dest_.pop_front();
    losses_seen_ = losses;
  }
  // Loss write-off: once the transmitter has drained and flush_bound
  // exchanges pass with nothing delivered, whatever is still unaccounted was
  // eaten by the line. submitted_ - delivered_ is then exactly the number of
  // admitted-but-never-delivered descriptors (delivered_ only ever advances
  // in reap()), so frames_lost is exact: frames_in == frames_out +
  // frames_lost once the channel is idle.
  if (in_flight() > 0 && stale_exchanges_ > cfg_.flush_bound &&
      !link_->endpoint_a().tx_pending()) {
    tel_.add_frames_lost(in_flight());
    delivered_ = submitted_;
    inflight_dest_.clear();
    stale_exchanges_ = 0;
  }

  return work;
}

void Channel::reap() {
  while (auto rx = link_->endpoint_b().reap_datagram()) {
    ++delivered_;
    stale_exchanges_ = 0;
    tel_.on_egress(rx->payload.size());
    FrameDesc out;
    out.protocol = rx->protocol;
    out.fabric_dest = egress_dest_;
    if (!inflight_dest_.empty()) {
      out.fabric_dest = inflight_dest_.front();
      inflight_dest_.pop_front();
    }
    out.source_channel = index_;
    out.payload = std::move(rx->payload);
    if (!egress_.try_push(std::move(out))) {
      // Ring full: spill locally (unbounded deque) rather than drop — the
      // stall is counted and the spill drains ahead of new deliveries.
      tel_.ring_full_stall();
      egress_spill_.push_back(std::move(out));
    }
    tel_.note_egress_depth(egress_.size_approx() + egress_spill_.size());
  }
}

bool Channel::idle() const {
  return !pending_ && egress_spill_.empty() && in_flight() == 0 && source_.empty() &&
         fabric_.empty();
}

}  // namespace p5::linecard
