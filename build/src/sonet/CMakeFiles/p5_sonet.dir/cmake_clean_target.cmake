file(REMOVE_RECURSE
  "libp5_sonet.a"
)
