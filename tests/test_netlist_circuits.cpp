// Gate-level circuit verification: every functional structural circuit is
// simulated gate by gate against its behavioural golden model, and the
// area reports are checked for the paper's qualitative shape.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "crc/crc_reference.hpp"
#include "crc/parallel_crc.hpp"
#include "hdlc/stuffing.hpp"
#include "netlist/circuits/control_circuits.hpp"
#include "netlist/circuits/crc_circuit.hpp"
#include "netlist/circuits/escape_circuits.hpp"
#include "netlist/circuits/oam_circuit.hpp"
#include "netlist/circuits/p5_circuit.hpp"
#include "netlist/lut_mapper.hpp"

namespace p5::netlist::circuits {
namespace {

/// Label -> index maps for driving a netlist by signal name.
struct Pins {
  std::map<std::string, std::size_t> in, out;
  explicit Pins(const Netlist& nl) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) in[nl.input_label(i)] = i;
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) out[nl.output_label(i)] = i;
  }
};

void set_bus(Netlist::Sim& sim, const Pins& p, const std::string& prefix, u64 value,
             std::size_t bits) {
  for (std::size_t i = 0; i < bits; ++i)
    sim.set_input(p.in.at(prefix + std::to_string(i)), (value >> i) & 1u);
}

u64 get_bus(const Netlist::Sim& sim, const Netlist& nl, const Pins& p, const std::string& prefix,
            std::size_t bits) {
  u64 v = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    const std::size_t idx = p.out.at(prefix + std::to_string(i));
    if (sim.value(nl.outputs()[idx])) v |= (u64{1} << i);
  }
  return v;
}

// ---- CRC circuit ----

class CrcCircuitWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrcCircuitWidths, MatchesParallelCrcModel) {
  const unsigned data_bits = GetParam();
  const crc::ParallelCrc model(crc::kFcs32, data_bits);
  const Netlist nl = make_crc_circuit(model);
  const Pins pins(nl);
  Netlist::Sim sim(nl);

  // init pulse.
  sim.set_input(pins.in.at("enable"), false);
  sim.set_input(pins.in.at("init"), true);
  set_bus(sim, pins, "d", 0, data_bits);
  sim.eval();
  sim.clock();
  sim.set_input(pins.in.at("init"), false);
  sim.set_input(pins.in.at("enable"), true);

  Xoshiro256 rng(50 + data_bits);
  u32 state = crc::kFcs32.init;
  for (int step = 0; step < 200; ++step) {
    Bytes block = rng.bytes(data_bits / 8);
    u64 packed = 0;
    for (std::size_t i = 0; i < block.size(); ++i) packed |= static_cast<u64>(block[i]) << (8 * i);
    set_bus(sim, pins, "d", packed, data_bits);
    sim.eval();
    EXPECT_EQ(get_bus(sim, nl, pins, "crc", 32), state) << "step " << step;
    sim.clock();
    state = model.advance(state, block);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CrcCircuitWidths, ::testing::Values(8u, 16u, 32u));

TEST(CrcCircuit, HoldWhenDisabled) {
  const crc::ParallelCrc model(crc::kFcs32, 8);
  const Netlist nl = make_crc_circuit(model);
  const Pins pins(nl);
  Netlist::Sim sim(nl);
  sim.set_input(pins.in.at("init"), true);
  sim.eval();
  sim.clock();
  sim.set_input(pins.in.at("init"), false);
  sim.set_input(pins.in.at("enable"), false);
  set_bus(sim, pins, "d", 0xAB, 8);
  for (int i = 0; i < 5; ++i) {
    sim.eval();
    EXPECT_EQ(get_bus(sim, nl, pins, "crc", 32), crc::kFcs32.init);
    sim.clock();
  }
}

TEST(CrcUnitCircuit, PartialWidthSelection) {
  const unsigned lanes = 4;
  const Netlist nl = make_crc_unit_circuit(crc::kFcs32, lanes);
  const Pins pins(nl);
  Netlist::Sim sim(nl);

  sim.set_input(pins.in.at("init"), true);
  sim.eval();
  sim.clock();
  sim.set_input(pins.in.at("init"), false);
  sim.set_input(pins.in.at("enable"), true);

  // Feed a 11-octet message: two full words then a 3-octet tail, switching
  // lane_count per word — the hardware path for non-multiple frame lengths.
  Xoshiro256 rng(90);
  const Bytes msg = rng.bytes(11);
  u32 expect = crc::kFcs32.init;
  std::size_t off = 0;
  while (off < msg.size()) {
    const std::size_t n = std::min<std::size_t>(lanes, msg.size() - off);
    u64 packed = 0;
    for (std::size_t i = 0; i < n; ++i) packed |= static_cast<u64>(msg[off + i]) << (8 * i);
    set_bus(sim, pins, "d", packed, 8 * lanes);
    set_bus(sim, pins, "lc", n, 3);
    sim.eval();
    EXPECT_EQ(get_bus(sim, nl, pins, "crc", 32), expect);
    sim.clock();
    for (std::size_t i = 0; i < n; ++i) expect = crc::bitwise_step(crc::kFcs32, expect, msg[off + i]);
    off += n;
  }
  sim.eval();
  EXPECT_EQ(get_bus(sim, nl, pins, "crc", 32), expect);
  EXPECT_EQ(expect, crc::bitwise_update(crc::kFcs32, crc::kFcs32.init, msg));
}

// ---- escape circuits: gate-level vs RFC 1662 golden model ----

/// Drives an escape unit netlist with a byte stream through the
/// valid/ready handshake and collects its output byte stream.
Bytes drive_escape_circuit(const Netlist& nl, unsigned lanes, BytesView input,
                           std::size_t max_cycles = 100000) {
  const Pins pins(nl);
  Netlist::Sim sim(nl);
  Bytes out;
  std::size_t off = 0;

  std::size_t idle = 0;
  for (std::size_t cycle = 0; cycle < max_cycles; ++cycle) {
    const bool have_input = off < input.size();
    u64 packed = 0;
    for (unsigned i = 0; i < lanes && off + i < input.size(); ++i)
      packed |= static_cast<u64>(input[off + i]) << (8 * i);
    set_bus(sim, pins, "in", packed, 8 * lanes);
    sim.set_input(pins.in.at("in_valid"), have_input);

    sim.eval();

    bool progressed = false;
    const std::size_t ovi = pins.out.at("out_valid");
    if (sim.value(nl.outputs()[ovi])) {
      const u64 word = get_bus(sim, nl, pins, "out", 8 * lanes);
      for (unsigned i = 0; i < lanes; ++i) out.push_back(static_cast<u8>(word >> (8 * i)));
      progressed = true;
    }
    const std::size_t iri = pins.out.at("in_ready");
    if (have_input && sim.value(nl.outputs()[iri])) {
      off += lanes;
      progressed = true;
    }

    sim.clock();
    idle = progressed ? 0 : idle + 1;
    if (!have_input && idle > 16) break;
  }
  return out;
}

class EscapeCircuitLanes : public ::testing::TestWithParam<unsigned> {};

TEST_P(EscapeCircuitLanes, GenerateMatchesGoldenStuffer) {
  const unsigned lanes = GetParam();
  const Netlist nl = make_escape_generate_circuit(lanes);
  Xoshiro256 rng(70 + lanes);
  for (const double density : {0.0, 0.1, 1.0}) {
    Bytes input;
    for (int i = 0; i < 256; ++i) {
      if (rng.chance(density))
        input.push_back(rng.chance(0.5) ? hdlc::kFlag : hdlc::kEscape);
      else
        input.push_back(rng.byte());
    }
    // Keep input a whole number of words.
    while (input.size() % lanes) input.push_back(0x11);

    const Bytes golden = hdlc::stuff(input);
    const Bytes got = drive_escape_circuit(nl, lanes, input);

    // The queue may retain a sub-word tail (no EOF flush in the bare
    // module); outputs are padded to words, so compare the golden prefix.
    ASSERT_LE(got.size(), golden.size() + lanes);
    const std::size_t n = std::min(got.size(), golden.size());
    ASSERT_GE(n + 5 * lanes, golden.size()) << "too much retained";
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], golden[i]) << "octet " << i << " density " << density;
  }
}

TEST_P(EscapeCircuitLanes, DetectMatchesGoldenDestuffer) {
  const unsigned lanes = GetParam();
  const Netlist nl = make_escape_detect_circuit(lanes);
  Xoshiro256 rng(80 + lanes);
  for (const double density : {0.0, 0.15, 1.0}) {
    Bytes payload;
    for (int i = 0; i < 200; ++i) {
      if (rng.chance(density))
        payload.push_back(rng.chance(0.5) ? hdlc::kFlag : hdlc::kEscape);
      else
        payload.push_back(rng.byte());
    }
    Bytes wire = hdlc::stuff(payload);
    while (wire.size() % lanes) wire.push_back(0x22);  // benign padding

    Bytes golden = hdlc::destuff(wire).data;
    const Bytes got = drive_escape_circuit(nl, lanes, wire);

    ASSERT_LE(got.size(), golden.size() + lanes);
    const std::size_t n = std::min(got.size(), golden.size());
    ASSERT_GE(n + 4 * lanes, golden.size());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], golden[i]) << "octet " << i << " density " << density;
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, EscapeCircuitLanes, ::testing::Values(1u, 2u, 4u));

TEST(EscapeCircuit, BackpressureNeverLosesData) {
  // All-flags input at 4 lanes: throughput halves but the byte stream stays
  // exact — the backpressure scheme, not data loss, absorbs the expansion.
  const unsigned lanes = 4;
  const Netlist nl = make_escape_generate_circuit(lanes);
  const Bytes input(128, hdlc::kFlag);
  const Bytes golden = hdlc::stuff(input);
  const Bytes got = drive_escape_circuit(nl, lanes, input);
  const std::size_t n = std::min(got.size(), golden.size());
  ASSERT_GE(n + 3 * lanes, golden.size());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(got[i], golden[i]);
}


TEST(FlagDelineatorCircuit, CompactsFlagsOutOfTheStream) {
  // The wide flag delineator is the compaction sorter keyed on the flag
  // comparators: its output stream is the input with every 0x7E removed.
  for (const unsigned lanes : {2u, 4u}) {
    const Netlist nl = make_flag_delineator_circuit(lanes);
    Xoshiro256 rng(120 + lanes);
    Bytes input;
    for (int i = 0; i < 240; ++i)
      input.push_back(rng.chance(0.25) ? hdlc::kFlag : rng.byte());
    while (input.size() % lanes) input.push_back(hdlc::kFlag);

    Bytes golden;
    for (const u8 b : input)
      if (b != hdlc::kFlag) golden.push_back(b);

    const Bytes got = drive_escape_circuit(nl, lanes, input);
    const std::size_t n = std::min(got.size(), golden.size());
    ASSERT_GE(n + 4 * lanes, golden.size()) << "too much retained, lanes " << lanes;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(got[i], golden[i]) << "octet " << i;
  }
}

TEST(EscapeCircuit, EightLaneVariantsWork) {
  // The 64-bit ablation point is functional, not just an area number.
  const Netlist gen = make_escape_generate_circuit(8);
  Xoshiro256 rng(140);
  Bytes input;
  for (int i = 0; i < 256; ++i)
    input.push_back(rng.chance(0.2) ? hdlc::kFlag : rng.byte());
  const Bytes golden = hdlc::stuff(input);
  const Bytes got = drive_escape_circuit(gen, 8, input);
  const std::size_t n = std::min(got.size(), golden.size());
  ASSERT_GE(n + 5 * 8, golden.size());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(got[i], golden[i]) << "octet " << i;
}

// ---- OAM circuit ----

TEST(OamCircuit, RegisterFileReadback) {
  const Netlist nl = make_oam_circuit(8);
  const Pins pins(nl);
  Netlist::Sim sim(nl);
  // Write 0xA5 to register 3.
  set_bus(sim, pins, "wd", 0xA5, 8);
  set_bus(sim, pins, "a", 3, 3);
  sim.set_input(pins.in.at("we"), true);
  sim.set_input(pins.in.at("mask_we"), false);
  sim.set_input(pins.in.at("irq_ack"), false);
  set_bus(sim, pins, "irq", 0, 8);
  sim.eval();
  sim.clock();
  sim.set_input(pins.in.at("we"), false);
  sim.eval();
  EXPECT_EQ(get_bus(sim, nl, pins, "rd", 8), 0xA5u);
  // Other registers unaffected.
  set_bus(sim, pins, "a", 2, 3);
  sim.eval();
  EXPECT_EQ(get_bus(sim, nl, pins, "rd", 8), 0u);
}

TEST(OamCircuit, InterruptPendingMaskAndClear) {
  const Netlist nl = make_oam_circuit(8);
  const Pins pins(nl);
  Netlist::Sim sim(nl);
  const std::size_t irq_out = pins.out.at("irq");

  auto eval_irq = [&] {
    sim.eval();
    return sim.value(nl.outputs()[irq_out]);
  };

  set_bus(sim, pins, "wd", 0, 8);
  set_bus(sim, pins, "a", 0, 3);
  sim.set_input(pins.in.at("we"), false);
  sim.set_input(pins.in.at("irq_ack"), false);

  // Raise source 2; masked out by default (mask=0) -> no irq.
  set_bus(sim, pins, "irq", 1u << 2, 8);
  sim.set_input(pins.in.at("mask_we"), false);
  eval_irq();
  sim.clock();
  set_bus(sim, pins, "irq", 0, 8);
  EXPECT_FALSE(eval_irq());

  // Unmask bit 2 -> irq asserts (pending latched).
  set_bus(sim, pins, "wd", 1u << 2, 8);
  sim.set_input(pins.in.at("mask_we"), true);
  eval_irq();
  sim.clock();
  sim.set_input(pins.in.at("mask_we"), false);
  EXPECT_TRUE(eval_irq());

  // Write-one-to-clear drops it.
  sim.set_input(pins.in.at("irq_ack"), true);
  set_bus(sim, pins, "wd", 1u << 2, 8);
  eval_irq();
  sim.clock();
  sim.set_input(pins.in.at("irq_ack"), false);
  EXPECT_FALSE(eval_irq());
}

// ---- area report shape (the paper's qualitative claims) ----

TEST(AreaShape, WideSystemMuchLargerThanNaiveScaling) {
  const AreaReport r8 = p5_system_report(1);
  const AreaReport r32 = p5_system_report(4);
  const double ratio =
      static_cast<double>(r32.total_luts()) / static_cast<double>(r8.total_luts());
  // Paper: ~11x, emphatically more than the naive 4x.
  EXPECT_GT(ratio, 4.0);
}

TEST(AreaShape, EscapeGenerateDominatesScaling) {
  const AreaReport e8 = escape_generate_report(1);
  const AreaReport e32 = escape_generate_report(4);
  const double lut_ratio =
      static_cast<double>(e32.total_luts()) / static_cast<double>(e8.total_luts());
  const double ff_ratio =
      static_cast<double>(e32.total_ffs()) / static_cast<double>(e8.total_ffs());
  // Paper Table 3: 25x LUTs / 28x FFs — the escape module scales far
  // super-linearly while the whole system scales ~11x.
  EXPECT_GT(lut_ratio, 8.0);
  EXPECT_GT(ff_ratio, 8.0);
  const AreaReport s8 = p5_system_report(1);
  const AreaReport s32 = p5_system_report(4);
  const double sys_ratio =
      static_cast<double>(s32.total_luts()) / static_cast<double>(s8.total_luts());
  EXPECT_GT(lut_ratio, sys_ratio);
}

TEST(AreaShape, EscapeModulesAreCombinationalHeavy) {
  // Paper: "most of the combinational logic ... however less than one third
  // of the available flip-flops" — LUTs dominate FFs in the escape units.
  const AreaReport e32 = escape_generate_report(4);
  EXPECT_GT(e32.total_luts(), 2 * e32.total_ffs());
}

TEST(AreaShape, DepthSupportsGigabitOnVirtexII) {
  const AreaReport r32 = p5_system_report(4);
  const double required = required_clock_mhz(2.5, 32);
  EXPECT_GE(xc2v1000_6().fmax_mhz(r32.critical_depth(), true), required);
  EXPECT_LT(xcv600_4().fmax_mhz(r32.critical_depth(), true), required);
}

TEST(AreaShape, ReportsFormatWithoutCrashing) {
  const AreaReport r = p5_system_report(1);
  EXPECT_FALSE(r.module_table().empty());
  EXPECT_FALSE(r.device_table(all_devices()).empty());
}

}  // namespace
}  // namespace p5::netlist::circuits
