file(REMOVE_RECURSE
  "CMakeFiles/test_pointer.dir/test_pointer.cpp.o"
  "CMakeFiles/test_pointer.dir/test_pointer.cpp.o.d"
  "test_pointer"
  "test_pointer.pdb"
  "test_pointer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
