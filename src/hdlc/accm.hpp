// Async-Control-Character-Map (RFC 1662 §7.1).
//
// On octet-synchronous links (PPP over SONET, RFC 1619) only the flag (0x7E)
// and the control-escape (0x7D) must be escaped; on async links the ACCM
// additionally forces escaping of selected control characters 0x00..0x1F.
// The P5's Escape Generate unit is programmable via the OAM register map,
// which is modelled by carrying an Accm through the datapath configuration.
#pragma once

#include "common/types.hpp"

namespace p5::hdlc {

inline constexpr u8 kFlag = 0x7E;    ///< frame delimiter
inline constexpr u8 kEscape = 0x7D;  ///< control escape
inline constexpr u8 kXor = 0x20;     ///< complement-bit-6 transform

class Accm {
 public:
  /// map: bit n set => control character n (0..31) must be escaped.
  explicit constexpr Accm(u32 map = 0) : map_(map) {}

  /// ACCM appropriate for octet-synchronous (SONET/SDH) links: nothing extra.
  static constexpr Accm sonet() { return Accm(0); }
  /// RFC 1662 default for async links: escape all 0x00..0x1F.
  static constexpr Accm async_default() { return Accm(0xFFFFFFFFu); }

  [[nodiscard]] constexpr u32 map() const { return map_; }

  /// Must this octet be escaped on transmit?
  [[nodiscard]] constexpr bool must_escape(u8 octet) const {
    if (octet == kFlag || octet == kEscape) return true;
    if (octet < 0x20) return (map_ >> octet) & 1u;
    return false;
  }

  constexpr bool operator==(const Accm&) const = default;

 private:
  u32 map_;
};

}  // namespace p5::hdlc
