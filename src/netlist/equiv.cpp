#include "netlist/equiv.hpp"

#include <map>

#include "common/rng.hpp"

namespace p5::netlist {

EquivResult random_equivalence(const Netlist& a, const Netlist& b, u64 vectors, u64 seed) {
  EquivResult r;

  // Interface match by label.
  std::map<std::string, std::size_t> b_in, b_out;
  for (std::size_t i = 0; i < b.inputs().size(); ++i) b_in[b.input_label(i)] = i;
  for (std::size_t i = 0; i < b.outputs().size(); ++i) b_out[b.output_label(i)] = i;
  if (a.inputs().size() != b.inputs().size() || a.outputs().size() != b.outputs().size()) {
    r.equivalent = false;
    r.mismatch = "interface size mismatch";
    return r;
  }
  std::vector<std::size_t> in_map(a.inputs().size()), out_map(a.outputs().size());
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    const auto it = b_in.find(a.input_label(i));
    if (it == b_in.end()) {
      r.equivalent = false;
      r.mismatch = "input '" + a.input_label(i) + "' missing in " + b.name();
      return r;
    }
    in_map[i] = it->second;
  }
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    const auto it = b_out.find(a.output_label(i));
    if (it == b_out.end()) {
      r.equivalent = false;
      r.mismatch = "output '" + a.output_label(i) + "' missing in " + b.name();
      return r;
    }
    out_map[i] = it->second;
  }

  Netlist::Sim sa(a), sb(b);
  Xoshiro256 rng(seed);
  for (u64 v = 0; v < vectors; ++v) {
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
      const bool bit = rng.chance(0.5);
      sa.set_input(i, bit);
      sb.set_input(in_map[i], bit);
    }
    sa.eval();
    sb.eval();
    for (std::size_t i = 0; i < a.outputs().size(); ++i) {
      if (sa.output(i) != sb.output(out_map[i])) {
        r.equivalent = false;
        r.mismatch = "output '" + a.output_label(i) + "' differs at vector " +
                     std::to_string(v);
        r.vectors_run = v + 1;
        return r;
      }
    }
    sa.clock();
    sb.clock();
    ++r.vectors_run;
  }
  return r;
}

}  // namespace p5::netlist
