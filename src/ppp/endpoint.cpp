#include "ppp/endpoint.hpp"

#include "hdlc/stuffing.hpp"
#include "ppp/protocols.hpp"

namespace p5::ppp {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kDead: return "Dead";
    case Phase::kEstablish: return "Establish";
    case Phase::kNetwork: return "Network";
    case Phase::kTerminate: return "Terminate";
  }
  return "?";
}

PppEndpoint::PppEndpoint(std::string name, Config cfg, std::function<void(BytesView)> wire_tx)
    : name_(std::move(name)),
      frame_(cfg.frame),
      wire_tx_(std::move(wire_tx)),
      delineator_([this](BytesView f) { on_frame(f); }) {
  // RFC 1661 §6: LCP negotiation always runs over default framing — no
  // header compression, 16-bit FCS — so that the two ends can talk before
  // agreeing on anything.
  negotiating_frame_ = cfg.frame;
  negotiating_frame_.acfc = false;
  negotiating_frame_.pfc = false;
  negotiating_frame_.fcs = hdlc::FcsKind::kFcs16;
  frame_ = negotiating_frame_;

  // Distinct endpoints must have distinct magic numbers or every exchange
  // looks like a loopback; mix the endpoint identity into the seed while
  // keeping runs deterministic.
  cfg.lcp.magic_seed ^= std::hash<std::string>{}(name_);

  requested_lqr_period_ = cfg.lcp.request_lqr_period;

  lcp_ = std::make_unique<Lcp>(cfg.lcp,
                               [this](u16 proto, const Packet& p) { send_control(proto, p); });
  lcp_->set_up_hook([this](const LcpResult& r) { on_lcp_up(r); });
  lcp_->set_down_hook([this]() { on_lcp_down(); });
  ipcp_ = std::make_unique<Ipcp>(cfg.ipcp,
                                 [this](u16 proto, const Packet& p) { send_control(proto, p); });
}

void PppEndpoint::lower_up() {
  phase_ = Phase::kEstablish;
  lcp_->up();
}

void PppEndpoint::lower_down() {
  phase_ = Phase::kDead;
  ipcp_->down();
  lcp_->down();
  frame_ = negotiating_frame_;
}

void PppEndpoint::open() {
  lcp_->open();
  ipcp_->open();
}

void PppEndpoint::close() {
  ipcp_->close();
  lcp_->close();
}

void PppEndpoint::tick() {
  lcp_->tick();
  ipcp_->tick();
  if (lqm_) lqm_->tick();
}

void PppEndpoint::send_control(u16 protocol, const Packet& pkt) {
  send_frame(protocol, pkt.serialize());
}

void PppEndpoint::send_frame(u16 protocol, BytesView info) {
  // LCP always travels in default framing; everything else uses the
  // currently negotiated configuration.
  const hdlc::FrameConfig& cfg = (protocol == kProtoLcp) ? negotiating_frame_ : frame_;
  // Zero-alloc fused encode: the arena's wire buffer is reused across frames.
  const BytesView wire = hdlc::encode_into(tx_arena_, cfg, protocol, info);
  ++stats_.frames_tx;
  if (lqm_ && protocol != kProtoLqr) lqm_->count_tx(wire.size());
  wire_tx_(wire);
}

bool PppEndpoint::send_ip(BytesView datagram) {
  if (phase_ != Phase::kNetwork || !ipcp_->is_opened()) {
    ++stats_.dropped_not_open;
    return false;
  }
  if (datagram.size() > frame_.max_payload) {
    ++stats_.dropped_not_open;
    return false;
  }
  ++stats_.datagrams_tx;
  send_frame(kProtoIpv4, datagram);
  return true;
}

void PppEndpoint::wire_rx(BytesView octets) { delineator_.push(octets); }

void PppEndpoint::on_frame(BytesView stuffed_content) {
  // Destuff into the endpoint-owned scratch through the endpoint's cached
  // escape engine: no per-frame allocation, no per-frame dispatch setup.
  rx_scratch_.clear();
  if (!rx_engine_.destuff_append(rx_scratch_, stuffed_content)) {
    ++stats_.fcs_errors;
    return;
  }

  // LCP frames may arrive in default framing even after negotiation; try the
  // active config first, then the default one.
  auto result = hdlc::parse(frame_, rx_scratch_);
  if (!result.ok() && !(frame_.fcs == negotiating_frame_.fcs && frame_.acfc == negotiating_frame_.acfc &&
                        frame_.pfc == negotiating_frame_.pfc)) {
    result = hdlc::parse(negotiating_frame_, rx_scratch_);
  }
  if (!result.ok()) {
    ++stats_.fcs_errors;
    if (lqm_) lqm_->count_rx_error();
    return;
  }
  ++stats_.frames_rx;

  const u16 protocol = result.frame->protocol;
  const Bytes& info = result.frame->payload;

  switch (protocol) {
    case kProtoLcp:
      lcp_->receive(info);
      break;
    case kProtoIpcp:
      // NCP packets before the Network phase are silently discarded
      // (RFC 1661 §3.4).
      if (phase_ == Phase::kNetwork) ipcp_->receive(info);
      break;
    case kProtoIpv4:
      if (phase_ == Phase::kNetwork && ipcp_->is_opened()) {
        ++stats_.datagrams_rx;
        if (lqm_) lqm_->count_rx_good(info.size());
        if (ip_sink_) ip_sink_(info);
      } else if (lqm_) {
        lqm_->count_rx_discard();
      }
      break;
    case kProtoLqr:
      if (lqm_) lqm_->on_lqr(info);
      break;
    default: {
      // Protocol-Reject (RFC 1661 §5.7) — only while LCP is opened.
      ++stats_.unknown_protocols;
      if (lcp_->is_opened()) {
        Packet rej;
        rej.code = static_cast<u8>(Code::kProtocolReject);
        rej.identifier = 0x77;
        put_be16(rej.data, protocol);
        append(rej.data, info);
        send_control(kProtoLcp, rej);
      }
      break;
    }
  }
}

void PppEndpoint::on_lcp_up(const LcpResult& result) {
  phase_ = Phase::kNetwork;
  // Bring up link-quality monitoring if either direction negotiated it:
  // emitting reports when the peer asked for them, measuring inbound loss
  // from the peer's reports when we asked.
  if (result.tx_lqr_period > 0 || requested_lqr_period_ > 0) {
    LqmConfig lc;
    lc.emit_reports = result.tx_lqr_period > 0;
    lc.reporting_ticks = std::max<u32>(1, result.tx_lqr_period);
    lqm_ = std::make_unique<LqmMonitor>(lc, lcp_->magic(), [this](BytesView w) {
      send_frame(kProtoLqr, w);
    });
  }
  // Program the "OAM registers": apply the negotiated framing.
  frame_ = negotiating_frame_;
  frame_.pfc = result.tx_pfc;
  frame_.acfc = result.tx_acfc;
  frame_.fcs = result.fcs32 ? hdlc::FcsKind::kFcs32 : hdlc::FcsKind::kFcs16;
  frame_.max_payload = result.peer_mru;
  ipcp_->up();
}

void PppEndpoint::on_lcp_down() {
  if (phase_ == Phase::kNetwork) phase_ = Phase::kTerminate;
  lqm_.reset();
  ipcp_->down();
  frame_ = negotiating_frame_;
}

}  // namespace p5::ppp
