// Frame capture — a pcap-flavoured trace container for the simulated links.
//
// Records timestamped frames (cycle stamps, since the simulation has no wall
// clock), serialises to a compact binary format, reloads, and renders a
// tcpdump-style text summary. Examples and failing tests dump captures so a
// run can be inspected offline; the binary format is versioned and
// self-describing enough to survive the repository evolving.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace p5::net {

enum class Direction : u8 { kTx = 0, kRx = 1 };

struct CapturedFrame {
  u64 cycle = 0;        ///< simulation timestamp
  Direction direction = Direction::kTx;
  u16 protocol = 0;     ///< PPP protocol field (0 if unknown/raw)
  Bytes payload;        ///< frame information field (or raw octets)
};

class Capture {
 public:
  static constexpr u32 kMagic = 0x50354341;  // "P5CA"
  static constexpr u16 kVersion = 1;

  void record(u64 cycle, Direction dir, u16 protocol, BytesView payload);
  void clear() { frames_.clear(); }

  [[nodiscard]] const std::vector<CapturedFrame>& frames() const { return frames_; }
  [[nodiscard]] std::size_t size() const { return frames_.size(); }
  [[nodiscard]] std::size_t total_octets() const;

  /// Binary serialisation (little-endian, length-prefixed records).
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Capture> parse(BytesView data);

  bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<Capture> load(const std::string& path);

  /// tcpdump-style one-line-per-frame summary.
  [[nodiscard]] std::string summary(std::size_t max_frames = 50) const;

 private:
  std::vector<CapturedFrame> frames_;
};

}  // namespace p5::net
