file(REMOVE_RECURSE
  "libp5_hdlc.a"
)
