// Batched zero-copy transport: the ChunkPool + scatter-gather I/O layer.
//
//  * Partial sendmsg: a tiny SO_SNDBUF forces the kernel to cut writes mid
//    chunk and mid iovec; the resume cursor must keep the byte stream exact
//    across thousands of mixed-size frames.
//  * ChunkPool lifetime: recycle-after-close, bounded free list, and the
//    pool-dies-first path (refs outliving their pool self-free) — the ASan
//    leg of the suite proves no leak and no double-free either way.
//  * recvmmsg: a burst of mixed-size datagrams lands in fewer syscalls than
//    frames, byte-exact.
//  * Equivalence oracle: a fast-tier TCP tunnel pair under every fault
//    class, once with batching pinned on and once pinned off — delivered
//    payloads, endpoint RX ledgers, and transport chunk ledgers must agree,
//    proving batch delivery is an observational no-op.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "p5/fast_endpoint.hpp"
#include "testing/fault.hpp"
#include "transport/chunk_pool.hpp"
#include "transport/conn.hpp"
#include "transport/event_loop.hpp"
#include "transport/socket.hpp"
#include "transport/tunnel.hpp"

namespace p5::transport {
namespace {

Bytes stamped_payload(Xoshiro256& rng, u32 index, std::size_t len) {
  Bytes p;
  p.reserve(len + 4);
  put_be32(p, index);
  for (std::size_t i = 0; i < len; ++i) {
    if (rng.chance(0.08))
      p.push_back(rng.chance(0.5) ? u8{0x7E} : u8{0x7D});
    else
      p.push_back(rng.byte());
  }
  return p;
}

// ------------------------------------------------------------- partial writev

TEST(BatchTransport, PartialSendmsgResumesMidIovecUnderTinySndbuf) {
  EventLoop loop;
  TransportTelemetry ctel, stel;

  Fd listen_fd = tcp_listen(SocketAddr{"127.0.0.1", 0});
  ASSERT_TRUE(listen_fd.valid());
  ConnConfig ccfg;
  ccfg.batch = IoBatch::kOn;
  ccfg.so_sndbuf_bytes = 4096;  // kernel-minimum territory: every flush is partial
  ccfg.send_watermark_bytes = 64 * 1024 * 1024;
  std::unique_ptr<StreamConn> server;
  loop.add_fd(listen_fd.get(), kReadable, [&](u32) {
    Fd c = tcp_accept(listen_fd.get());
    if (!c.valid()) return;
    server = std::make_unique<StreamConn>(loop, stel, ConnConfig{}, std::move(c), false);
  });
  bool in_progress = false;
  Fd c = tcp_connect(SocketAddr{"127.0.0.1", local_port(listen_fd.get())}, in_progress);
  ASSERT_TRUE(c.valid());
  StreamConn client(loop, ctel, ccfg, std::move(c), in_progress);
  for (int guard = 0; guard < 1000 && (!server || !client.open()); ++guard) loop.run_once(10);
  ASSERT_TRUE(server && client.open());

  // Mixed sizes around and past the SNDBUF so the kernel's cut lands at
  // arbitrary offsets: first-iovec-partial, mid-iovec, and exact-boundary.
  constexpr std::size_t kFrames = 3000;
  Xoshiro256 rng(41);
  std::vector<Bytes> sent;
  sent.reserve(kFrames);
  for (u32 i = 0; i < kFrames; ++i) sent.push_back(stamped_payload(rng, i, rng.range(1, 6000)));

  std::vector<Bytes> got;
  got.reserve(kFrames);
  server->set_on_frame([&](BytesView v) { got.emplace_back(v.begin(), v.end()); });

  std::size_t next = 0;
  for (int guard = 0; guard < 200000 && got.size() < kFrames; ++guard) {
    while (next < kFrames && client.send_frame(sent[next])) ++next;
    client.flush();
    loop.run_once(5);
  }
  ASSERT_EQ(got.size(), kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) ASSERT_EQ(got[i], sent[i]) << "frame " << i;

  const TransportSnapshot cs = ctel.snapshot();
  EXPECT_EQ(cs.frames_in, kFrames);
  EXPECT_EQ(cs.frames_out, kFrames);
  EXPECT_EQ(cs.frames_lost, 0u);
  // The whole point of the batch: several frames per sendmsg even while the
  // kernel keeps truncating writes.
  ASSERT_GT(cs.tx_syscalls, 0u);
  EXPECT_LT(cs.tx_syscalls, kFrames);
  EXPECT_GT(cs.frames_per_syscall(), 1.0);
  loop.remove_fd(listen_fd.get());
}

// ----------------------------------------------------------------- ChunkPool

TEST(BatchTransport, PoolRecyclesChunksAndBoundsTheFreeList) {
  ChunkPool::Config cfg;
  cfg.max_free = 4;
  cfg.retain_capacity = 1024;
  ChunkPool pool(nullptr, cfg);

  std::vector<ChunkRef> held;
  for (int i = 0; i < 8; ++i) {
    ChunkRef r = pool.acquire(128);
    r.data().assign(64, u8(i));
    held.push_back(std::move(r));
  }
  ChunkPool::Counters c = pool.counters();
  EXPECT_EQ(c.allocated, 8u);
  EXPECT_EQ(c.recycled, 0u);
  EXPECT_EQ(c.outstanding, 8u);

  held.clear();  // 4 go to the free list, 4 are freed (bounded list)
  c = pool.counters();
  EXPECT_EQ(c.outstanding, 0u);

  for (int i = 0; i < 4; ++i) held.push_back(pool.acquire(128));
  c = pool.counters();
  EXPECT_EQ(c.allocated, 8u);  // served from the free list, no new heap
  EXPECT_EQ(c.recycled, 4u);
  EXPECT_EQ(c.outstanding, 4u);

  // Copying a ref bumps the refcount: one release must not recycle.
  ChunkRef a = pool.acquire(16);
  a.data().assign(3, u8{0xEE});
  ChunkRef b = a;
  a.reset();
  ASSERT_TRUE(bool(b));
  EXPECT_EQ(b.data().size(), 3u);
  EXPECT_EQ(pool.counters().outstanding, 5u);
  b.reset();
  EXPECT_EQ(pool.counters().outstanding, 4u);

  // Oversize buffers are trimmed on release instead of pinning capacity.
  ChunkRef big = pool.acquire(64 * 1024);
  big.data().resize(64 * 1024);
  big.reset();
  ChunkRef again = pool.acquire(16);
  EXPECT_LE(again.data().capacity(), cfg.retain_capacity + 16);
}

TEST(BatchTransport, ChunksOutlivingTheirPoolSelfFree) {
  // A queued chunk can outlive its pool (tunnel teardown racing a deferred
  // close). The shared core keeps late releases safe: they free instead of
  // recycling. ASan across this test proves no leak and no double-free.
  std::vector<ChunkRef> survivors;
  {
    ChunkPool pool(nullptr);
    for (int i = 0; i < 3; ++i) {
      ChunkRef r = pool.acquire(256);
      r.data().assign(200, u8(0x5A + i));
      survivors.push_back(std::move(r));
    }
    EXPECT_EQ(pool.counters().outstanding, 3u);
  }  // pool dies first
  for (auto& r : survivors) {
    ASSERT_TRUE(bool(r));
    EXPECT_EQ(r.data().size(), 200u);
  }
  survivors.clear();  // late releases hit the closed core and self-free
}

TEST(BatchTransport, PoolRecyclesAcrossConnClose) {
  // Conn churn against one shared pool: buffers released by a closing conn
  // are served to the next one instead of round-tripping the heap.
  EventLoop loop;
  TransportTelemetry tel;
  ChunkPool pool(&tel);
  const Bytes frame(512, 0xCD);
  for (int round = 0; round < 3; ++round) {
    Fd listen_fd = tcp_listen(SocketAddr{"127.0.0.1", 0});
    ASSERT_TRUE(listen_fd.valid());
    loop.add_fd(listen_fd.get(), kReadable, [&](u32) { (void)tcp_accept(listen_fd.get()); });
    bool in_progress = false;
    Fd c = tcp_connect(SocketAddr{"127.0.0.1", local_port(listen_fd.get())}, in_progress);
    ASSERT_TRUE(c.valid());
    ConnConfig cfg;
    cfg.batch = IoBatch::kOn;
    auto conn = std::make_unique<StreamConn>(loop, tel, cfg, std::move(c), in_progress, &pool);
    for (int guard = 0; guard < 1000 && !conn->open(); ++guard) loop.run_once(10);
    ASSERT_TRUE(conn->open());
    for (int i = 0; i < 32; ++i) ASSERT_TRUE(conn->send_frame(frame));
    conn->close();  // still-queued chunks release into the live pool
    conn.reset();
    loop.remove_fd(listen_fd.get());
  }
  const ChunkPool::Counters c = pool.counters();
  EXPECT_EQ(c.outstanding, 0u);
  EXPECT_GT(c.recycled, 0u);
  EXPECT_LT(c.allocated, 3u * 32u);  // later rounds ran on recycled buffers
  EXPECT_EQ(tel.snapshot().pool_recycled, c.recycled);
}

// ------------------------------------------------------------------ recvmmsg

TEST(BatchTransport, RecvmmsgDrainsMixedSizeBurstInFewerSyscallsThanFrames) {
  EventLoop loop;
  TransportTelemetry stel, rtel;
  ConnConfig cfg;
  cfg.batch = IoBatch::kOn;

  Fd srv = udp_bind(SocketAddr{"127.0.0.1", 0});
  ASSERT_TRUE(srv.valid());
  const u16 port = local_port(srv.get());
  DgramConn receiver(loop, rtel, cfg, std::move(srv), /*learn_peer=*/true);
  Fd cli = udp_connect(SocketAddr{"127.0.0.1", port});
  ASSERT_TRUE(cli.valid());
  DgramConn sender(loop, stel, cfg, std::move(cli), /*learn_peer=*/false);

  constexpr std::size_t kDgrams = 64;
  Xoshiro256 rng(91);
  std::vector<Bytes> sent;
  // Mixed sizes, but the total stays well under the default SO_RCVBUF so the
  // staged burst survives loopback intact (the test asserts zero loss).
  for (u32 i = 0; i < kDgrams; ++i) sent.push_back(stamped_payload(rng, i, rng.range(1, 2000)));

  std::vector<Bytes> got;
  receiver.set_on_frames([&](std::span<const BytesView> burst) {
    for (const BytesView& v : burst) got.emplace_back(v.begin(), v.end());
  });

  // Stage + flush the whole burst before the receiver runs once: the
  // datagrams pile up in the socket so recvmmsg really sees full batches.
  for (const Bytes& p : sent) ASSERT_TRUE(sender.send_frame(p));
  sender.flush();
  for (int guard = 0; guard < 1000 && got.size() < kDgrams; ++guard) loop.run_once(10);

  ASSERT_EQ(got.size(), kDgrams);  // loopback UDP: loss-free in practice
  for (std::size_t i = 0; i < kDgrams; ++i) ASSERT_EQ(got[i], sent[i]) << "dgram " << i;

  const TransportSnapshot ss = stel.snapshot(), rs = rtel.snapshot();
  EXPECT_EQ(ss.frames_in, kDgrams);
  EXPECT_EQ(ss.frames_in, ss.frames_out + ss.frames_lost);
  EXPECT_LT(ss.tx_syscalls, kDgrams);  // sendmmsg batched the staged burst
  EXPECT_EQ(rs.frames_rcvd, kDgrams);
  EXPECT_LT(rs.rx_syscalls, kDgrams);  // recvmmsg drained several per call
  EXPECT_GT(rs.frames_per_syscall(), 1.0);
}

// -------------------------------------------------- batched-vs-serial oracle

/// One tunnel leg: fast-tier TCP pair, `spec` as the B->A rx tap, transport
/// batching pinned by `batch`. Returns everything an equivalence check needs.
struct LegResult {
  std::map<u32, Bytes> delivered;
  u64 frames_ok = 0;
  u64 frames_bad = 0;
  TransportSnapshot tx;  // tun_b (sender side)
  TransportSnapshot rx;  // tun_a (receiver side)
};

LegResult run_tunnel_leg(IoBatch batch, const testing::FaultSpec& spec) {
  EventLoop loop;
  auto ep_a = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
  auto ep_b = core::make_sonet_endpoint(core::DeviceTier::kFast, {}, sonet::kSts3c);
  TunnelConfig ca;
  ca.listen = true;
  ca.udp = false;
  ca.port = 0;
  ca.conn.batch = batch;  // explicit pin: immune to the P5_TX_BATCH override
  Tunnel tun_a(loop, TunnelBinding::endpoint(*ep_a), ca);
  tun_a.start();
  TunnelConfig cb = ca;
  cb.listen = false;
  cb.port = tun_a.bound_port();
  cb.seed = ca.seed + 1;
  Tunnel tun_b(loop, TunnelBinding::endpoint(*ep_b), cb);
  tun_b.start();

  testing::FaultyLine line(spec);
  tun_a.set_rx_tap(std::ref(line));

  // Fixed submission pattern: the whole burst is posted up front (the
  // device TX pool holds it), so both legs pull the identical chunk
  // sequence and the seeded tap makes the identical per-chunk decisions.
  Xoshiro256 rng(57);
  std::vector<Bytes> payloads;
  for (u32 i = 0; i < 40; ++i) payloads.push_back(stamped_payload(rng, i, rng.range(200, 900)));

  LegResult r;
  std::size_t submitted = 0;
  int settle = 0;
  for (int guard = 0; guard < 20000; ++guard) {
    while (submitted < payloads.size() && ep_b->submit_datagram(0x0021, payloads[submitted]))
      ++submitted;
    tun_a.pump();
    tun_b.pump();
    loop.run_once(1);
    while (auto d = ep_a->reap_datagram()) {
      if (d->payload.size() >= 4) r.delivered[get_be32(d->payload, 0)] = d->payload;
    }
    if (submitted == payloads.size() && !ep_b->tx_pending()) {
      if (++settle > 200) break;
    } else {
      settle = 0;
    }
  }
  const core::RxCounters rc = ep_a->rx_counters();
  r.frames_ok = rc.frames_ok;
  r.frames_bad = rc.frames_bad;
  r.tx = tun_b.stats();
  r.rx = tun_a.stats();

  // Per-leg invariants, checked before any cross-leg comparison: exact
  // chunk ledgers on both ends, and every delivery byte-exact.
  EXPECT_EQ(r.tx.frames_in, r.tx.frames_out + r.tx.frames_lost);
  EXPECT_EQ(r.rx.frames_in, r.rx.frames_out + r.rx.frames_lost);
  for (const auto& [idx, p] : r.delivered) {
    EXPECT_LT(idx, payloads.size());
    EXPECT_EQ(p, payloads[idx]) << "corrupt delivery " << idx;
  }
  return r;
}

/// The oracle: batching must be observationally equivalent to the serial
/// frame-at-a-time path under this fault class.
void expect_batch_equivalence(const testing::FaultSpec& spec) {
  const LegResult on = run_tunnel_leg(IoBatch::kOn, spec);
  const LegResult off = run_tunnel_leg(IoBatch::kOff, spec);

  // Identical deliveries, datagram for datagram.
  ASSERT_EQ(on.delivered.size(), off.delivered.size());
  EXPECT_EQ(on.delivered, off.delivered);
  // Identical endpoint RX disposition ledger.
  EXPECT_EQ(on.frames_ok, off.frames_ok);
  EXPECT_EQ(on.frames_bad, off.frames_bad);
  // Identical chunk counts across the wire (grouping is the only freedom
  // batching has; it must never create or destroy chunks).
  EXPECT_EQ(on.tx.frames_in, off.tx.frames_in);
  EXPECT_EQ(on.tx.frames_out, off.tx.frames_out);
  EXPECT_EQ(on.tx.frames_lost, off.tx.frames_lost);
  EXPECT_EQ(on.rx.frames_rcvd, off.rx.frames_rcvd);
  // The batched leg actually batched: fewer TX syscalls than chunks.
  EXPECT_LT(on.tx.tx_syscalls, off.tx.tx_syscalls);
}

TEST(BatchTransport, EquivalentToSerialOnCleanLine) {
  expect_batch_equivalence(testing::FaultSpec::clean(5));
}

TEST(BatchTransport, EquivalentToSerialUnderBitErrors) {
  expect_batch_equivalence(testing::FaultSpec::ber(2e-5, 7));
}

TEST(BatchTransport, EquivalentToSerialUnderOctetSlips) {
  expect_batch_equivalence(testing::FaultSpec::slips(0.01, 0.01, 11));
}

TEST(BatchTransport, EquivalentToSerialUnderTruncation) {
  expect_batch_equivalence(testing::FaultSpec::truncation(0.05, 13));
}

TEST(BatchTransport, EquivalentToSerialUnderHdlcAborts) {
  expect_batch_equivalence(testing::FaultSpec::aborts(0.05, 17));
}

TEST(BatchTransport, EquivalentToSerialUnderChunkDrops) {
  expect_batch_equivalence(testing::FaultSpec::drop(0.08, 19));
}

}  // namespace
}  // namespace p5::transport
