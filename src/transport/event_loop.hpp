// Nonblocking readiness loop — the first layer where the simulator meets
// the OS. epoll on Linux with a portable poll(2) fallback (selectable for
// tests, mandatory elsewhere), one-shot timers, and a thread-safe post()
// queue with a self-pipe wakeup.
//
// Like the line card, the loop is designed to be driven two ways with
// identical results:
//   * deterministic mode — a test calls run_once() in a loop (mirroring
//     LineCard::step()), optionally with manual time so timers fire only
//     when the test advances the clock: no real time, no threads, byte
//     reproducible;
//   * threaded mode — one thread calls run(), every other thread talks to
//     the loop exclusively through post()/stop().
//
// Thread contract: add_fd/modify_fd/remove_fd/add_timer/cancel_timer and
// run_once are loop-context only (the run() thread, or inside callbacks and
// posted tasks). post(), stop() and stopped() are thread-safe.
//
// Shutdown ordering: post() and stop() are linearized against each other
// (both take the task lock), so every post() either lands before the stop —
// in which case run() executes it before returning (final drain) — or lands
// after, in which case post() returns false and enqueues nothing. A task is
// never silently stranded in the queue by a racing stop(): it runs, or its
// producer observed the drop. Custom drivers that call run_once() in their
// own loop get the same guarantee by calling drain_posted() after their
// stop flag trips.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "transport/socket.hpp"

namespace p5::transport {

inline constexpr u32 kReadable = 1u << 0;
inline constexpr u32 kWritable = 1u << 1;
inline constexpr u32 kIoError = 1u << 2;  ///< HUP/ERR — always delivered

class EventLoop {
 public:
  enum class Backend : u8 { kAuto, kEpoll, kPoll };
  using IoCallback = std::function<void(u32 events)>;
  using TimerId = u64;

  explicit EventLoop(Backend backend = Backend::kAuto);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] bool using_epoll() const;

  // ---- fd registration ----
  void add_fd(int fd, u32 interest, IoCallback cb);
  void modify_fd(int fd, u32 interest);
  void remove_fd(int fd);
  [[nodiscard]] std::size_t watched_fds() const { return fds_.size(); }

  // ---- one-shot timers ----
  TimerId add_timer(u64 delay_ms, std::function<void()> cb);
  void cancel_timer(TimerId id);
  [[nodiscard]] std::size_t pending_timers() const { return timers_.size(); }

  // ---- time ----
  /// Monotonic milliseconds since loop construction (or the manual clock).
  [[nodiscard]] u64 now_ms() const;
  /// Deterministic tests: freeze the clock before scheduling anything; time
  /// then advances only through advance_time(), and run_once never blocks.
  void enable_manual_time();
  void advance_time(u64 ms);
  [[nodiscard]] bool manual_time() const { return manual_time_; }

  // ---- dispatch ----
  /// One bounded slice: wait at most `timeout_ms` for readiness (clamped to
  /// the next timer deadline; manual-time loops never block), then dispatch
  /// ready fds, due timers and posted tasks. Returns callbacks dispatched.
  std::size_t run_once(int timeout_ms = 0);
  /// run_once(100) until stop(), then drain_posted() — tasks accepted before
  /// the stop still run. One-shot: construct a fresh loop to rerun.
  void run();
  void stop();  // thread-safe; wakes a blocked run_once
  [[nodiscard]] bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// Thread-safe: queue `fn` for execution on the loop context. Returns
  /// false — and enqueues nothing — once the loop has been stopped; the
  /// caller has then observed the drop (see the shutdown-ordering contract
  /// in the header comment).
  bool post(std::function<void()> fn);
  /// Loop-context: execute every task queued so far and return how many ran.
  /// run() calls this after its stop; custom run_once() drivers should too.
  std::size_t drain_posted();

 private:
  struct FdEntry {
    u32 interest = 0;
    u64 gen = 0;  ///< guards dispatch against fd-number reuse mid-slice
    IoCallback cb;
  };
  struct Ready {
    int fd;
    u64 gen;
    u32 events;
  };

  int wait_budget_ms(int timeout_ms) const;
  void collect_ready(int wait_ms);
  void drain_wakeup();

  Fd epoll_fd_;  ///< invalid when the poll backend is active
  Fd wake_rd_, wake_wr_;
  std::map<int, FdEntry> fds_;
  u64 gen_counter_ = 0;

  std::multimap<u64, std::pair<TimerId, std::function<void()>>> timers_;
  TimerId next_timer_id_ = 1;

  bool manual_time_ = false;
  u64 manual_now_ms_ = 0;
  u64 epoch_ns_ = 0;

  std::atomic<bool> stopped_{false};
  std::mutex task_mu_;
  std::vector<std::function<void()>> tasks_;

  std::vector<Ready> ready_;  ///< per-slice scratch
};

}  // namespace p5::transport
