#include "hdlc/stuffing.hpp"

#include <optional>

#include "fastpath/escape_simd.hpp"
#include "fastpath/stuff_fast.hpp"

namespace p5::hdlc {

namespace {

// The escape engine carries per-call dispatch telemetry, so an engine must
// not be shared across threads; these free functions are called from both
// the fabric and worker contexts of the threaded line card, hence one cached
// engine per thread. Stuff and destuff use separate slots: destuffing is
// ACCM-independent, so an ACCM change on the transmit side must not evict
// the receive engine (or vice versa).
const fastpath::EscapeEngine& tx_engine(const Accm& accm) {
  thread_local std::optional<fastpath::EscapeEngine> eng;
  if (!eng || eng->accm() != accm) eng.emplace(accm);
  return *eng;
}

const fastpath::EscapeEngine& rx_engine() {
  thread_local std::optional<fastpath::EscapeEngine> eng;
  if (!eng) eng.emplace(Accm::sonet());
  return *eng;
}

}  // namespace

Bytes stuff(BytesView data, const Accm& accm) {
  Bytes out;
  // Worst-case reservation (every octet escapes, 2x, plus vector-store
  // slack): never reallocates mid-loop, unlike the old "+ size/8" guess
  // which did at high escape density — and needs no counting pre-pass.
  out.reserve(2 * data.size() + fastpath::kStuffSlack);
  tx_engine(accm).stuff_append(out, data);
  return out;
}

std::size_t stuffing_expansion(BytesView data, const Accm& accm) {
  return fastpath::count_escapes(data, accm);
}

DestuffResult destuff(BytesView data) {
  DestuffResult r;
  r.data.reserve(data.size() + fastpath::kStuffSlack);
  // Lenient decode: complement bit 6 whatever the escaped octet is. A
  // 0x7D-0x7E (escape-then-flag) abort never reaches here because the
  // delineator splits frames on the flag first and reports the abort itself.
  r.ok = rx_engine().destuff_append(r.data, data);
  return r;
}

}  // namespace p5::hdlc
