// PPP Reliable Transmission (RFC 1663) over a noisy link — the paper's
// Control-field scenario: "PPP may be configured via the LCP to use sequence
// numbers and acknowledgements ... of particular use in noisy environments
// such as wireless networks."
//
// Two numbered-mode ARQ machines run *through the P5 datapath*: every
// I/RR/REJ frame travels the full pipeline (header with sequenced Control
// octet -> CRC-32 -> escape generate -> flags -> a high-BER line -> flag
// delineation -> escape detect -> CRC check). Frames the line corrupts are
// FCS-discarded by the P5 and recovered by T1/REJ retransmission, so the
// application sees a lossless in-order stream.
//
//   build/examples/reliable_wireless [ber]   (default 4e-5 — harsh)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "p5/p5.hpp"
#include "ppp/reliable.hpp"

int main(int argc, char** argv) {
  using namespace p5;
  const double ber = argc > 1 ? std::atof(argv[1]) : 4e-5;

  core::P5Config cfg;
  cfg.lanes = 4;
  core::P5 left(cfg), right(cfg);

  // A crude radio: bytes from each transmitter get bit errors at `ber`.
  Xoshiro256 noise(99);
  auto irradiate = [&](Bytes b) {
    for (u8& octet : b)
      for (int bit = 0; bit < 8; ++bit)
        if (noise.chance(ber)) octet ^= static_cast<u8>(1 << bit);
    return b;
  };

  // Numbered-mode machines, wired through the P5 devices.
  ppp::ReliableConfig rc;
  rc.window = 4;
  std::vector<Bytes> left_rx, right_rx;
  ppp::ReliableLink lr(
      rc,
      [&](u8 control, BytesView payload) {
        core::TxRequest req;
        req.protocol = 0x0021;
        req.control = control;
        req.payload.assign(payload.begin(), payload.end());
        left.submit_frame(std::move(req));
      },
      [&](BytesView p) { left_rx.emplace_back(p.begin(), p.end()); });
  ppp::ReliableLink rl(
      rc,
      [&](u8 control, BytesView payload) {
        core::TxRequest req;
        req.protocol = 0x0021;
        req.control = control;
        req.payload.assign(payload.begin(), payload.end());
        right.submit_frame(std::move(req));
      },
      [&](BytesView p) { right_rx.emplace_back(p.begin(), p.end()); });

  left.set_rx_sink([&](core::RxDelivery d) { lr.on_frame(d.control, d.payload); });
  right.set_rx_sink([&](core::RxDelivery d) { rl.on_frame(d.control, d.payload); });

  // 40 payloads each way.
  std::vector<Bytes> sent_lr, sent_rl;
  Xoshiro256 gen(5);
  for (int i = 0; i < 40; ++i) {
    Bytes a = gen.bytes(gen.range(20, 300));
    Bytes b = gen.bytes(gen.range(20, 300));
    sent_lr.push_back(a);
    sent_rl.push_back(b);
    lr.send(std::move(a));
    rl.send(std::move(b));
  }

  // Drive both radios until everything is through (or hopeless).
  for (int round = 0; round < 30000; ++round) {
    right.phy_push_rx(irradiate(left.phy_pull_tx(4)));
    left.phy_push_rx(irradiate(right.phy_pull_tx(4)));
    if (round % 250 == 249) {  // ~ a T1 period in line time
      lr.tick();
      rl.tick();
    }
    if (right_rx.size() == sent_lr.size() && left_rx.size() == sent_rl.size() &&
        lr.unacked() == 0 && rl.unacked() == 0)
      break;
  }

  std::printf("numbered-mode PPP over a BER %.1e line\n\n", ber);
  auto report = [](const char* name, const ppp::ReliableLink& l, const core::P5& dev) {
    std::printf("%s: sent %llu, retransmitted %llu, delivered %llu, dup-dropped %llu, "
                "REJs %llu | line FCS drops %llu\n",
                name, static_cast<unsigned long long>(l.stats().data_sent),
                static_cast<unsigned long long>(l.stats().retransmissions),
                static_cast<unsigned long long>(l.stats().delivered),
                static_cast<unsigned long long>(l.stats().duplicates),
                static_cast<unsigned long long>(l.stats().rejs_sent),
                static_cast<unsigned long long>(dev.rx_crc().bad_frames()));
  };
  report("left ", lr, left);
  report("right", rl, right);

  if (lr.failed() || rl.failed())
    std::printf("link declared failed after N2 retransmissions\n");
  const bool ok = right_rx == sent_lr && left_rx == sent_rl;
  std::printf("\n%s\n", ok ? "OK: lossless, in-order delivery over a lossy line."
                           : "FAIL: stream corrupted or incomplete");
  return ok ? 0 : 1;
}
