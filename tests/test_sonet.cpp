// SDH/SONET substrate tests: scramblers, STS-Nc framer/deframer geometry,
// alignment recovery, BIP error counting and the stochastic line model.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "sonet/line.hpp"
#include "sonet/scrambler.hpp"
#include "sonet/spe.hpp"

namespace p5::sonet {
namespace {

// ---- scramblers ----

TEST(FrameScrambler, DeterministicKeystream) {
  FrameScrambler a, b;
  a.reset();
  b.reset();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_keystream(), b.next_keystream());
}

TEST(FrameScrambler, Period127Bits) {
  // x^7+x^6+1 is maximal-length: the keystream repeats every 127 bits.
  FrameScrambler s;
  s.reset();
  Bytes first;
  for (int i = 0; i < 127; ++i) first.push_back(s.next_keystream());
  Bytes second;
  for (int i = 0; i < 127; ++i) second.push_back(s.next_keystream());
  EXPECT_EQ(first, second);
}

TEST(FrameScrambler, ApplyIsInvolution) {
  Xoshiro256 rng(1);
  Bytes data = rng.bytes(270);
  const Bytes orig = data;
  FrameScrambler s;
  s.reset();
  s.apply(data, 9, data.size());
  EXPECT_NE(data, orig);
  FrameScrambler d;
  d.reset();
  d.apply(data, 9, data.size());
  EXPECT_EQ(data, orig);
}

TEST(SelfSync43, RoundTrip) {
  Xoshiro256 rng(2);
  const Bytes in = rng.bytes(1000);
  SelfSyncScrambler43 scr, dscr;
  const Bytes wire = scr.scramble(in);
  EXPECT_NE(wire, in);
  EXPECT_EQ(dscr.descramble(wire), in);
}

TEST(SelfSync43, DescramblerSelfSynchronises) {
  // Start the descrambler mid-stream with unknown state: after 43 bits
  // (6 octets) it must be in sync.
  Xoshiro256 rng(3);
  const Bytes in = rng.bytes(200);
  SelfSyncScrambler43 scr;
  const Bytes wire = scr.scramble(in);

  SelfSyncScrambler43 late;
  Bytes out = late.descramble(BytesView(wire).subspan(50));
  // Compare after the 6-octet resync window.
  for (std::size_t i = 6; i < out.size(); ++i) EXPECT_EQ(out[i], in[50 + i]) << i;
}

TEST(SelfSync43, SingleBitErrorAffectsTwoBits) {
  // Self-synchronous x^43+1: one wire bit error corrupts exactly the
  // corresponding bit and the bit 43 positions later.
  const Bytes in(32, 0x00);
  SelfSyncScrambler43 scr, d1, d2;
  Bytes wire = scr.scramble(in);
  wire[2] ^= 0x01;  // flip one bit
  const Bytes out = d1.descramble(wire);
  int wrong_bits = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    wrong_bits += __builtin_popcount(out[i] ^ in[i]);
  EXPECT_EQ(wrong_bits, 2);
}

TEST(SelfSync43, BreaksKillerPatterns) {
  // A payload crafted as all-zeroes must not appear as all-zeroes on the
  // wire (the attack RFC 2615 defends against).
  const Bytes zeros(100, 0x00);
  SelfSyncScrambler43 scr;
  // Prime the history with something nonzero, as a live link would be.
  (void)scr.scramble(Bytes{0xA5});
  const Bytes wire = scr.scramble(zeros);
  // With all-zero input the output replays the 43-bit history forever, so
  // the primed ones recur in every 43-bit window: no long zero runs survive.
  std::size_t nonzero = 0, zero_run = 0, longest_run = 0;
  for (const u8 b : wire) {
    if (b) {
      ++nonzero;
      zero_run = 0;
    } else {
      longest_run = std::max(longest_run, ++zero_run);
    }
  }
  EXPECT_GT(nonzero, 20u);
  EXPECT_LE(longest_run, 6u);  // 43 bits < 6 octets
}

// ---- SPE geometry ----

TEST(StsSpec, GeometrySts3c) {
  EXPECT_EQ(kSts3c.columns(), 270u);
  EXPECT_EQ(kSts3c.toh_columns(), 9u);
  EXPECT_EQ(kSts3c.fixed_stuff_columns(), 0u);
  EXPECT_EQ(kSts3c.frame_bytes(), 2430u);
  EXPECT_EQ(kSts3c.payload_columns(), 260u);
  EXPECT_NEAR(kSts3c.line_rate_mbps(), 155.52, 0.01);
}

TEST(StsSpec, GeometrySts48c) {
  EXPECT_EQ(kSts48c.columns(), 4320u);
  EXPECT_EQ(kSts48c.fixed_stuff_columns(), 15u);
  EXPECT_NEAR(kSts48c.line_rate_mbps(), 2488.32, 0.01);
  // Paper: 2.5 Gbps payload channel.
  EXPECT_GT(kSts48c.payload_rate_mbps(), 2300.0);
  EXPECT_LT(kSts48c.payload_rate_mbps(), 2488.32);
}

TEST(StsSpec, PayloadRateBelowLineRate) {
  for (const auto& s : {kSts3c, kSts12c, kSts48c})
    EXPECT_LT(s.payload_rate_mbps(), s.line_rate_mbps());
}

// ---- framer/deframer ----

class PatternSource {
 public:
  explicit PatternSource(u64 seed) : rng_(seed) {}
  Bytes operator()(std::size_t n) {
    Bytes out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const u8 b = rng_.byte();
      out.push_back(b);
      sent_.push_back(b);
    }
    return out;
  }
  Bytes sent_;

 private:
  Xoshiro256 rng_;
};

TEST(Sonet, PayloadSurvivesFramingRoundTrip) {
  PatternSource src(10);
  SonetFramer framer(kSts3c, [&src](std::size_t n) { return src(n); });
  Bytes received;
  SonetDeframer deframer(kSts3c, [&received](BytesView p) {
    received.insert(received.end(), p.begin(), p.end());
  });
  for (int f = 0; f < 5; ++f) deframer.push(framer.next_frame());
  EXPECT_EQ(received, src.sent_);
  EXPECT_TRUE(deframer.in_sync());
  EXPECT_EQ(deframer.stats().frames_in_sync, 5u);
  EXPECT_EQ(deframer.stats().b1_errors, 0u);
  EXPECT_EQ(deframer.stats().b3_errors, 0u);
}

TEST(Sonet, AcquiresSyncFromMisalignedStream) {
  PatternSource src(11);
  SonetFramer framer(kSts3c, [&src](std::size_t n) { return src(n); });
  SonetDeframer deframer(kSts3c, [](BytesView) {});
  // Offset the stream by a partial frame of garbage.
  Xoshiro256 rng(12);
  Bytes garbage = rng.bytes(1000);
  deframer.push(garbage);
  for (int f = 0; f < 4; ++f) deframer.push(framer.next_frame());
  EXPECT_TRUE(deframer.in_sync());
  EXPECT_GE(deframer.stats().frames_in_sync, 3u);
  EXPECT_GT(deframer.stats().discarded_octets, 0u);
}

TEST(Sonet, BitErrorsRaiseBipCounts) {
  PatternSource src(13);
  SonetFramer framer(kSts3c, [&src](std::size_t n) { return src(n); });
  SonetDeframer deframer(kSts3c, [](BytesView) {});
  for (int f = 0; f < 10; ++f) {
    Bytes frame = framer.next_frame();
    if (f == 4) frame[500] ^= 0x08;  // corrupt payload region
    deframer.push(frame);
  }
  EXPECT_TRUE(deframer.in_sync());
  EXPECT_GE(deframer.stats().b1_errors + deframer.stats().b3_errors, 1u);
}

TEST(Sonet, C2SignalLabelIsPpp) {
  PatternSource src(14);
  SonetFramer framer(kSts3c, [&src](std::size_t n) { return src(n); });
  Bytes frame = framer.next_frame();
  // Descramble to inspect C2 (row 2, first SPE column).
  FrameScrambler d;
  d.reset();
  d.apply(frame, kSts3c.toh_columns(), frame.size());
  EXPECT_EQ(frame[2 * kSts3c.columns() + kSts3c.toh_columns()], kC2PppScrambled);
}

TEST(Sonet, ScrambledLineHasNoLongZeroRuns) {
  // All-zero payload must still give a transition-rich line signal.
  SonetFramer framer(kSts3c, [](std::size_t n) { return Bytes(n, 0); });
  (void)framer.next_frame();
  const Bytes frame = framer.next_frame();
  std::size_t longest_zero_run = 0, run = 0;
  for (const u8 b : frame) {
    if (b == 0) {
      ++run;
      longest_zero_run = std::max(longest_zero_run, run);
    } else {
      run = 0;
    }
  }
  EXPECT_LT(longest_zero_run, 10u);
}

TEST(Sonet, Sts12cRoundTrip) {
  PatternSource src(15);
  SonetFramer framer(kSts12c, [&src](std::size_t n) { return src(n); });
  Bytes received;
  SonetDeframer deframer(kSts12c, [&received](BytesView p) {
    received.insert(received.end(), p.begin(), p.end());
  });
  for (int f = 0; f < 3; ++f) deframer.push(framer.next_frame());
  EXPECT_EQ(received, src.sent_);
}

// ---- line model ----

TEST(Line, NoErrorsAtZeroBer) {
  Line line(LineConfig{});
  Xoshiro256 rng(16);
  const Bytes in = rng.bytes(5000);
  EXPECT_EQ(line.transfer(in), in);
  EXPECT_EQ(line.stats().bit_errors, 0u);
}

TEST(Line, MeasuredBerNearConfigured) {
  LineConfig cfg;
  cfg.bit_error_rate = 1e-3;
  cfg.seed = 17;
  Line line(cfg);
  Xoshiro256 rng(18);
  (void)line.transfer(rng.bytes(200000));
  EXPECT_NEAR(line.measured_ber(), 1e-3, 3e-4);
}

TEST(Line, BurstModeClustersErrors) {
  LineConfig cfg;
  cfg.bit_error_rate = 0.0;
  cfg.burst_enter = 0.001;
  cfg.burst_exit = 0.05;
  cfg.burst_error_rate = 0.2;
  cfg.seed = 19;
  Line line(cfg);
  Xoshiro256 rng(20);
  (void)line.transfer(rng.bytes(100000));
  // Errors exist and are clustered: octets-hit should be much smaller than
  // bit_errors would suggest under independence at the same average rate.
  EXPECT_GT(line.stats().bit_errors, 0u);
  EXPECT_GT(static_cast<double>(line.stats().bit_errors) /
                static_cast<double>(line.stats().octets_hit),
            1.2);
}

TEST(Line, DeterministicBySeed) {
  LineConfig cfg;
  cfg.bit_error_rate = 1e-2;
  Line a(cfg), b(cfg);
  Xoshiro256 rng(21);
  const Bytes in = rng.bytes(1000);
  EXPECT_EQ(a.transfer(in), b.transfer(in));
}

}  // namespace
}  // namespace p5::sonet
