// K-input LUT technology mapper.
//
// Covers the combinational portion of a Netlist with K-input lookup tables
// using a greedy cone-packing heuristic:
//   * a node becomes a LUT root if it drives a flip-flop or primary output,
//     or if it has fanout > 1 (no logic duplication);
//   * single-fanout fanin cones are absorbed into their consumer while the
//     cone's leaf count stays <= K;
//   * oversized cones are decomposed bottom-up into LUT trees (a wide XOR of
//     n inputs costs ceil((n-1)/(K-1)) LUTs across ceil(log_K n) levels —
//     exactly how a synthesis tool expands the parallel-CRC XOR matrices);
//   * inverters are absorbed for free (LUTs invert without cost).
//
// Outputs: LUT count, FF count, and LUT-level depth of the critical
// register-to-register path — the quantities Tables 1-3 report.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace p5::netlist {

struct MapResult {
  std::size_t luts = 0;
  std::size_t ffs = 0;
  std::size_t depth = 0;       ///< critical path, in LUT levels
  std::size_t gates = 0;       ///< pre-mapping gate count (excl. sources)
  std::size_t roots = 0;       ///< LUT roots before decomposition
};

[[nodiscard]] MapResult map_to_luts(const Netlist& nl, unsigned k = 4);

}  // namespace p5::netlist
