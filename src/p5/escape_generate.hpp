// Cycle-accurate Escape Generate unit — the transmit-side byte sorter
// (paper Section 3, Figure 5).
//
// Pipeline (lanes >= 2, the paper's 4-stage structure):
//   S1  lane classification (flag/escape comparators), input word registered
//   S2  expansion prefix-sum: per-lane target slot + produced-octet count
//   S3  slot crossbar merges up to 2*lanes octets into the 2*lanes-octet
//       resynchronisation queue; backpressure stalls S2/S1 when the sorted
//       word does not fit
//   S4  output register: `lanes` octets leave per cycle; an EOF drains the
//       queue so frames never share a word
//
// First-octet latency is therefore 4 cycles — the paper's "first data
// transmitted is delayed by 4 clock cycles, approximately 50ns. Subsequent
// data flow is continuous".
//
// The identical algorithm is generated as gates in
// src/netlist/circuits/escape_circuits.cpp; equivalence tests drive both
// against the RFC 1662 reference stuffer.
#pragma once

#include <deque>

#include "common/types.hpp"
#include "hdlc/accm.hpp"
#include "rtl/fifo.hpp"
#include "rtl/module.hpp"
#include "rtl/stats.hpp"
#include "rtl/word.hpp"

namespace p5::core {

class EscapeGenerate final : public rtl::Module {
 public:
  EscapeGenerate(std::string name, unsigned lanes, rtl::Fifo<rtl::Word>& in,
                 rtl::Fifo<rtl::Word>& out, hdlc::Accm accm = hdlc::Accm::sonet());

  void eval() override;
  void commit() override;

  /// Reprogram the transparency map (OAM ACCM write); applies to octets
  /// classified after the call.
  void set_accm(hdlc::Accm accm) { accm_ = accm; }

  [[nodiscard]] const rtl::StageStats& stats() const { return stats_; }
  /// 3*lanes: smallest deadlock-free resynchronisation buffer (a queue
  /// holding lanes-1 octets must still absorb a fully-escaped word).
  [[nodiscard]] std::size_t queue_capacity() const { return 3u * lanes_; }
  [[nodiscard]] std::size_t peak_queue_occupancy() const { return peak_occ_; }
  /// Current queue occupancy (for cycle-by-cycle traces).
  [[nodiscard]] std::size_t queue_occupancy() const { return queue_.size(); }
  [[nodiscard]] u64 backpressure_cycles() const { return backpressure_cycles_; }
  [[nodiscard]] u64 escapes_inserted() const { return escapes_; }

 private:
  struct Stage {
    rtl::Word word;
    bool valid = false;
  };

  unsigned lanes_;
  rtl::Fifo<rtl::Word>& in_;
  rtl::Fifo<rtl::Word>& out_;
  hdlc::Accm accm_;

  // Current-cycle register state.
  Stage s1_, s2_;
  std::deque<u8> queue_;
  bool queue_sof_ = false;      ///< queue front begins a frame
  bool draining_eof_ = false;   ///< flush partial words until empty

  // Next-cycle values staged by eval().
  Stage s1_next_, s2_next_;
  std::deque<u8> queue_next_;
  bool queue_sof_next_ = false;
  bool draining_next_ = false;

  rtl::StageStats stats_;
  std::size_t peak_occ_ = 0;
  u64 backpressure_cycles_ = 0;
  u64 escapes_ = 0;
};

}  // namespace p5::core
