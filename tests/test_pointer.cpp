// SONET payload-pointer processing tests: codec, justification events under
// clock offset, NDF jumps, acquisition, and Loss-of-Pointer defect handling.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sonet/pointer.hpp"

namespace p5::sonet {
namespace {

// ---- codec ----

TEST(PointerWord, EncodeDecodeRoundTrip) {
  for (const u16 v : {0, 1, 100, 522, 782}) {
    for (const bool ndf : {false, true}) {
      PointerWord w{v, ndf};
      const auto d = PointerWord::decode(w.encode());
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->value, v);
      EXPECT_EQ(d->ndf, ndf);
    }
  }
}

TEST(PointerWord, RejectsBadNdfNibble) {
  PointerWord w{10, false};
  const u16 raw = w.encode();
  EXPECT_FALSE(PointerWord::decode(static_cast<u16>((raw & 0x0FFF) | 0x0000)).has_value());
  EXPECT_FALSE(PointerWord::decode(static_cast<u16>((raw & 0x0FFF) | 0xF000)).has_value());
}

TEST(PointerWord, RejectsOutOfRangeValue) {
  const u16 raw = static_cast<u16>((0x6 << 12) | 800);  // > 782
  EXPECT_FALSE(PointerWord::decode(raw).has_value());
}

TEST(PointerWord, InversionVotes) {
  PointerWord w{300, false};
  const u16 i_ev = w.encode(/*invert_i=*/true, false);
  auto v = PointerWord::vote_against(i_ev, 300);
  EXPECT_EQ(v.i_inverted, 5u);
  EXPECT_EQ(v.d_inverted, 0u);
  const u16 d_ev = w.encode(false, /*invert_d=*/true);
  v = PointerWord::vote_against(d_ev, 300);
  EXPECT_EQ(v.d_inverted, 5u);
  EXPECT_EQ(v.i_inverted, 0u);
}

// ---- generator/interpreter harness ----

struct Source {
  explicit Source(u64 seed) : rng(seed) {}
  Bytes operator()(std::size_t n) {
    Bytes b;
    b.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const u8 octet = rng.byte();
      b.push_back(octet);
      sent.push_back(octet);
    }
    return b;
  }
  Xoshiro256 rng;
  Bytes sent;
};

struct Harness {
  Source src{7};
  Bytes received;
  PointerGenerator gen;
  PointerInterpreter interp;

  explicit Harness(double ppm, std::size_t capacity = 90)
      : gen(capacity, ppm, [this](std::size_t n) { return src(n); }),
        interp(capacity, [this](BytesView p) {
          received.insert(received.end(), p.begin(), p.end());
        }) {}

  void run(int frames) {
    for (int i = 0; i < frames; ++i) interp.push(gen.next_frame());
  }

  /// Received must be a contiguous slice of sent (acquisition drops the
  /// first frames' payload).
  void expect_contiguous_tail() const {
    ASSERT_LE(received.size(), src.sent.size());
    const std::size_t skip = src.sent.size() - received.size();
    EXPECT_TRUE(std::equal(received.begin(), received.end(), src.sent.begin() + skip))
        << "payload not contiguous";
  }
};

TEST(Pointer, ZeroOffsetPassesPayloadAfterAcquisition) {
  Harness h(0.0);
  h.run(20);
  EXPECT_EQ(h.interp.stats().positive_justifications, 0u);
  EXPECT_EQ(h.interp.stats().negative_justifications, 0u);
  // Acquisition loses exactly the first two frames' payload.
  EXPECT_EQ(h.src.sent.size() - h.received.size(), 2u * 90u);
  h.expect_contiguous_tail();
}

TEST(Pointer, PositiveJustificationUnderSlowPayload) {
  // 1000 ppm: an event every ~12 frames — aggressive but leaves room for
  // the 3-frame pointer acquisition (real networks are +-20 ppm).
  Harness h(+1000.0);
  h.run(600);
  EXPECT_GT(h.gen.positive_justifications(), 10u);
  EXPECT_EQ(h.interp.stats().positive_justifications, h.gen.positive_justifications());
  EXPECT_EQ(h.interp.stats().negative_justifications, 0u);
  h.expect_contiguous_tail();
  EXPECT_EQ(h.interp.pointer(), h.gen.pointer());
}

TEST(Pointer, NegativeJustificationUnderFastPayload) {
  Harness h(-1000.0);
  h.run(600);
  EXPECT_GT(h.gen.negative_justifications(), 10u);
  EXPECT_EQ(h.interp.stats().negative_justifications, h.gen.negative_justifications());
  EXPECT_EQ(h.interp.stats().positive_justifications, 0u);
  h.expect_contiguous_tail();
  EXPECT_EQ(h.interp.pointer(), h.gen.pointer());
}

TEST(Pointer, JustificationRateMatchesOffset) {
  // Each positive event absorbs one octet; the event rate must track the
  // configured ppm offset: events ~= frames * capacity * ppm * 1e-6.
  Harness h(+2000.0, 90);
  const int frames = 1000;
  h.run(frames);
  const double expected = frames * 90 * 2000e-6;
  EXPECT_NEAR(static_cast<double>(h.gen.positive_justifications()), expected,
              expected * 0.1 + 2);
}

TEST(Pointer, NdfJumpAcceptedImmediately) {
  Harness h(0.0);
  h.run(10);
  h.gen.new_data_jump(500);
  h.run(5);
  EXPECT_EQ(h.interp.stats().ndf_jumps, 1u);
  EXPECT_EQ(h.interp.pointer(), 500u);
  h.expect_contiguous_tail();
}

TEST(Pointer, SilentRepointNeedsThreeConsistentValues) {
  Bytes received;
  PointerInterpreter interp(90, [&](BytesView p) {
    received.insert(received.end(), p.begin(), p.end());
  });
  auto frame_with = [](u16 value) {
    PointeredFrame f;
    f.h1h2 = PointerWord{value, false}.encode();
    f.capacity.assign(90, 0xAA);
    return f;
  };
  // Acquire at 0.
  for (int i = 0; i < 4; ++i) interp.push(frame_with(0));
  ASSERT_EQ(interp.pointer(), 0u);
  // One or two frames of a new value do not re-point...
  interp.push(frame_with(99));
  interp.push(frame_with(99));
  EXPECT_EQ(interp.pointer(), 0u);
  // ...the third does.
  interp.push(frame_with(99));
  EXPECT_EQ(interp.pointer(), 99u);
}

TEST(Pointer, LossOfPointerAfterEightInvalid) {
  PointerInterpreter interp(90, [](BytesView) {});
  PointeredFrame good;
  good.h1h2 = PointerWord{0, false}.encode();
  good.capacity.assign(90, 0);
  for (int i = 0; i < 4; ++i) interp.push(good);
  EXPECT_FALSE(interp.in_lop());

  PointeredFrame bad;
  bad.h1h2 = 0xFFFF;  // invalid NDF nibble
  bad.capacity.assign(90, 0);
  for (int i = 0; i < 7; ++i) interp.push(bad);
  EXPECT_FALSE(interp.in_lop());
  interp.push(bad);
  EXPECT_TRUE(interp.in_lop());
  EXPECT_EQ(interp.stats().lop_events, 1u);
  EXPECT_EQ(interp.stats().invalid_pointers, 8u);

  // Recovery: three consecutive good pointers re-acquire.
  for (int i = 0; i < 3; ++i) interp.push(good);
  EXPECT_FALSE(interp.in_lop());
}

TEST(Pointer, LopSuppressesPayload) {
  std::size_t octets = 0;
  PointerInterpreter interp(90, [&](BytesView p) { octets += p.size(); });
  PointeredFrame bad;
  bad.h1h2 = 0x0000;
  bad.capacity.assign(90, 0x55);
  for (int i = 0; i < 20; ++i) interp.push(bad);
  EXPECT_TRUE(interp.in_lop());
  EXPECT_EQ(octets, 0u);  // nothing leaked while the pointer was garbage
}

TEST(Pointer, MixedDriftLongRun) {
  // Long run with a realistic (small) offset: events are rare but payload
  // must stay perfectly contiguous.
  Harness h(+20.0, 270);  // 20 ppm, STS-3c-sized capacity
  h.run(3000);
  EXPECT_GE(h.gen.positive_justifications(), 1u);
  h.expect_contiguous_tail();
}

}  // namespace
}  // namespace p5::sonet
