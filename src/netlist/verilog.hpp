// Structural Verilog-2001 export of a Netlist — the bridge back to a real
// FPGA flow. The emitted module is synthesisable (continuous assigns plus a
// single always @(posedge clk) block for the flip-flops), so every circuit
// in this repository can be pushed through a modern Yosys/Vivado run to
// cross-check the area model against an actual technology mapper.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace p5::netlist {

/// Emit `nl` as a self-contained Verilog module named after the netlist.
/// Ports: clk, every primary input, every primary output (1 bit each,
/// labels sanitised to Verilog identifiers).
[[nodiscard]] std::string to_verilog(const Netlist& nl);

}  // namespace p5::netlist
