// Two-phase hardware FIFO model.
//
// All inter-module communication in the cycle model goes through Fifo<T>.
// During the *eval* phase of a cycle, consumers may peek/pop and producers may
// test-and-push; the effects are queued. The simulator then calls commit(),
// which applies pops before pushes — matching a synchronous FIFO whose read
// and write ports fire on the same clock edge.
//
// Evaluation-order contract: within one cycle, a channel's CONSUMER must be
// evaluated before its PRODUCER. The simulator evaluates modules in
// registration order, so pipelines are registered sink-first. This reproduces
// the combinational "ready" path of a flow-through pipeline register: a
// capacity-1 Fifo sustains one token per cycle.
//
// Occupancy statistics (peak, stall cycles) feed the resynchronisation-buffer
// experiments (DESIGN.md E6).
#pragma once

#include <deque>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace p5::rtl {

class FifoBase {
 public:
  virtual ~FifoBase() = default;
  virtual void commit() = 0;
};

template <typename T>
class Fifo final : public FifoBase {
 public:
  explicit Fifo(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {
    P5_EXPECTS(capacity_ >= 1);
  }

  // ---- consumer side (eval phase) ----
  [[nodiscard]] bool can_pop() const { return pending_pops_ < items_.size(); }
  [[nodiscard]] const T& front() const {
    P5_EXPECTS(can_pop());
    return items_[pending_pops_];
  }
  T pop() {
    P5_EXPECTS(can_pop());
    return items_[pending_pops_++];
  }

  // ---- producer side (eval phase) ----
  /// Space check that honours pops already performed this cycle (flow-through).
  [[nodiscard]] bool can_push(std::size_t n = 1) const {
    return items_.size() - pending_pops_ + pending_pushes_.size() + n <= capacity_;
  }
  void push(T v) {
    P5_EXPECTS(can_push());
    pending_pushes_.push_back(std::move(v));
  }

  // ---- clock edge ----
  void commit() override {
    for (std::size_t i = 0; i < pending_pops_; ++i) items_.pop_front();
    pending_pops_ = 0;
    for (auto& v : pending_pushes_) items_.push_back(std::move(v));
    total_pushed_ += pending_pushes_.size();
    pending_pushes_.clear();
    peak_ = std::max(peak_, items_.size());
  }

  // ---- introspection ----
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t peak_occupancy() const { return peak_; }
  [[nodiscard]] u64 total_pushed() const { return total_pushed_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  void reset() {
    items_.clear();
    pending_pushes_.clear();
    pending_pops_ = 0;
    peak_ = 0;
    total_pushed_ = 0;
  }

 private:
  std::string name_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<T> pending_pushes_;
  std::size_t pending_pops_ = 0;
  std::size_t peak_ = 0;
  u64 total_pushed_ = 0;
};

}  // namespace p5::rtl
