file(REMOVE_RECURSE
  "CMakeFiles/hardware_export.dir/hardware_export.cpp.o"
  "CMakeFiles/hardware_export.dir/hardware_export.cpp.o.d"
  "hardware_export"
  "hardware_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
