#include "netlist/builder.hpp"

#include <bit>
#include <string>

namespace p5::netlist {

Bus Builder::input_bus(const std::string& prefix, std::size_t bits) {
  Bus bus;
  bus.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) bus.push_back(nl_.input(prefix + std::to_string(i)));
  return bus;
}

Bus Builder::constant_bus(u64 value, std::size_t bits) {
  Bus bus;
  bus.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) bus.push_back(nl_.constant((value >> i) & 1u));
  return bus;
}

Bus Builder::dff_bus(std::size_t bits) {
  Bus bus;
  bus.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) bus.push_back(nl_.dff());
  return bus;
}

void Builder::wire_dff_bus(const Bus& dffs, const Bus& d) {
  P5_EXPECTS(dffs.size() == d.size());
  for (std::size_t i = 0; i < dffs.size(); ++i) nl_.set_dff_input(dffs[i], d[i]);
}

void Builder::output_bus(const Bus& bus, const std::string& prefix) {
  for (std::size_t i = 0; i < bus.size(); ++i) nl_.output(bus[i], prefix + std::to_string(i));
}

namespace {
NodeId reduce_tree(Netlist& nl, Op op, Bus bits) {
  P5_EXPECTS(!bits.empty());
  while (bits.size() > 1) {
    Bus next;
    next.reserve((bits.size() + 3) / 4);
    // 4-ary reduction matches 4-input LUT granularity.
    for (std::size_t i = 0; i < bits.size(); i += 4) {
      std::vector<NodeId> group;
      for (std::size_t j = i; j < std::min(i + 4, bits.size()); ++j) group.push_back(bits[j]);
      next.push_back(group.size() == 1 ? group[0] : nl.gate(op, std::move(group)));
    }
    bits = std::move(next);
  }
  return bits[0];
}
}  // namespace

NodeId Builder::reduce_and(const Bus& bits) { return reduce_tree(nl_, Op::kAnd, bits); }
NodeId Builder::reduce_or(const Bus& bits) { return reduce_tree(nl_, Op::kOr, bits); }
NodeId Builder::reduce_xor(const Bus& bits) { return reduce_tree(nl_, Op::kXor, bits); }

Bus Builder::bitwise_xor(const Bus& a, const Bus& b) {
  P5_EXPECTS(a.size() == b.size());
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(nl_.xor_(a[i], b[i]));
  return out;
}

Bus Builder::bitwise_and(const Bus& a, NodeId enable) {
  Bus out;
  out.reserve(a.size());
  for (const NodeId bit : a) out.push_back(nl_.and_(bit, enable));
  return out;
}

Bus Builder::mux_bus(NodeId sel, const Bus& when0, const Bus& when1) {
  P5_EXPECTS(when0.size() == when1.size());
  Bus out;
  out.reserve(when0.size());
  for (std::size_t i = 0; i < when0.size(); ++i)
    out.push_back(nl_.mux(sel, when0[i], when1[i]));
  return out;
}

Bus Builder::onehot_mux(const std::vector<NodeId>& selects, const std::vector<Bus>& choices) {
  P5_EXPECTS(!choices.empty() && selects.size() == choices.size());
  const std::size_t width = choices[0].size();
  Bus out;
  out.reserve(width);
  for (std::size_t bit = 0; bit < width; ++bit) {
    Bus terms;
    terms.reserve(choices.size());
    for (std::size_t c = 0; c < choices.size(); ++c) {
      P5_EXPECTS(choices[c].size() == width);
      terms.push_back(nl_.and_(selects[c], choices[c][bit]));
    }
    out.push_back(reduce_or(terms));
  }
  return out;
}

NodeId Builder::eq_const(const Bus& bus, u64 value) {
  Bus terms;
  terms.reserve(bus.size());
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const bool want = (value >> i) & 1u;
    terms.push_back(want ? bus[i] : nl_.not_(bus[i]));
  }
  return reduce_and(terms);
}

NodeId Builder::eq_bus(const Bus& a, const Bus& b) {
  P5_EXPECTS(a.size() == b.size());
  Bus terms;
  terms.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) terms.push_back(nl_.not_(nl_.xor_(a[i], b[i])));
  return reduce_and(terms);
}

NodeId Builder::table_fn(const Bus& in, const std::function<bool(u64)>& fn) {
  P5_EXPECTS(in.size() <= 12);
  const u64 combos = u64{1} << in.size();
  // Collect minterms; complement if that is smaller (LUTs invert for free).
  std::vector<u64> ones;
  for (u64 v = 0; v < combos; ++v)
    if (fn(v)) ones.push_back(v);
  if (ones.empty()) return nl_.constant(false);
  if (ones.size() == combos) return nl_.constant(true);

  const bool invert = ones.size() > combos / 2;
  std::vector<u64> terms;
  for (u64 v = 0; v < combos; ++v)
    if (fn(v) != invert) terms.push_back(v);

  Bus products;
  products.reserve(terms.size());
  for (const u64 t : terms) {
    Bus lits;
    lits.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
      lits.push_back(((t >> i) & 1u) ? in[i] : nl_.not_(in[i]));
    products.push_back(reduce_and(lits));
  }
  const NodeId sop = reduce_or(products);
  return invert ? nl_.not_(sop) : sop;
}

Bus Builder::table_bus(const Bus& in, const std::function<u64(u64)>& fn, std::size_t out_bits) {
  Bus out;
  out.reserve(out_bits);
  for (std::size_t b = 0; b < out_bits; ++b)
    out.push_back(table_fn(in, [&fn, b](u64 v) { return (fn(v) >> b) & 1u; }));
  return out;
}

Bus Builder::add(const Bus& a, const Bus& b, NodeId carry_in) {
  const std::size_t width = std::max(a.size(), b.size());

  // Small adds collapse into two-level logic (single LUTs per output bit).
  if (a.size() + b.size() + (carry_in != kInvalidNode ? 1 : 0) <= 6) {
    Bus in = a;
    in.insert(in.end(), b.begin(), b.end());
    if (carry_in != kInvalidNode) in.push_back(carry_in);
    const std::size_t an = a.size(), bn = b.size();
    const bool has_c = carry_in != kInvalidNode;
    return table_bus(
        in,
        [an, bn, has_c](u64 v) {
          const u64 av = v & ((u64{1} << an) - 1);
          const u64 bv = (v >> an) & ((u64{1} << bn) - 1);
          const u64 cv = has_c ? (v >> (an + bn)) & 1u : 0;
          return av + bv + cv;
        },
        width + 1);
  }

  // Carry-lookahead: carry_i = OR_j<i ( g_j & AND_{j<m<i} p_m ), flattened —
  // models the fast-carry structure FPGAs provide (shallow, gate-hungry).
  Bus g, p;
  for (std::size_t i = 0; i < width; ++i) {
    const NodeId ai = i < a.size() ? a[i] : nl_.constant(false);
    const NodeId bi = i < b.size() ? b[i] : nl_.constant(false);
    g.push_back(nl_.and_(ai, bi));
    p.push_back(nl_.xor_(ai, bi));
  }
  const NodeId c0 = carry_in == kInvalidNode ? nl_.constant(false) : carry_in;

  Bus sum;
  sum.reserve(width + 1);
  NodeId carry = c0;
  for (std::size_t i = 0; i <= width; ++i) {
    if (i > 0) {
      // carry into bit i, flattened two-level form.
      Bus terms;
      {
        Bus chain;  // c0 propagated through p[0..i-1]
        chain.push_back(c0);
        for (std::size_t m = 0; m < i; ++m) chain.push_back(p[m]);
        terms.push_back(reduce_and(chain));
      }
      for (std::size_t j = 0; j < i; ++j) {
        Bus chain;
        chain.push_back(g[j]);
        for (std::size_t m = j + 1; m < i; ++m) chain.push_back(p[m]);
        terms.push_back(reduce_and(chain));
      }
      carry = reduce_or(terms);
    }
    if (i < width)
      sum.push_back(nl_.xor_(p[i], carry));
    else
      sum.push_back(carry);
  }
  return sum;
}

Bus Builder::add_bit(const Bus& a, NodeId bit) {
  Bus b{bit};
  return add(a, b);
}

NodeId Builder::ge_const(const Bus& bus, u64 value) {
  if (value == 0) return nl_.constant(true);
  if (bus.size() <= 8) return table_fn(bus, [value](u64 v) { return v >= value; });
  // Wide compare: a >= v  <=>  a + (~v) + 1 carries out.
  const u64 mask = bus.size() >= 64 ? ~u64{0} : ((u64{1} << bus.size()) - 1);
  const Bus not_v = constant_bus((~value) & mask, bus.size());
  const Bus sum = add(bus, not_v, nl_.constant(true));
  return sum.back();  // carry-out
}

Bus Builder::popcount(const Bus& bits) {
  P5_EXPECTS(!bits.empty());
  std::size_t out_bits = 1;
  while ((std::size_t{1} << out_bits) <= bits.size()) ++out_bits;
  if (bits.size() <= 8)
    return table_bus(
        bits, [](u64 v) { return static_cast<u64>(std::popcount(v)); }, out_bits);
  // Tree of small adders for wide inputs.
  std::vector<Bus> partials;
  partials.reserve(bits.size());
  for (const NodeId b : bits) partials.push_back(Bus{b});
  while (partials.size() > 1) {
    std::vector<Bus> next;
    for (std::size_t i = 0; i + 1 < partials.size(); i += 2)
      next.push_back(add(partials[i], partials[i + 1]));
    if (partials.size() % 2) next.push_back(partials.back());
    partials = std::move(next);
  }
  return partials[0];
}

std::vector<Bus> Builder::rotate_lanes(const std::vector<Bus>& lanes, const Bus& amount) {
  // Log-shifter: stage k rotates by 2^k lanes when amount[k] is set.
  std::vector<Bus> current = lanes;
  const std::size_t n = lanes.size();
  for (std::size_t stage = 0; stage < amount.size(); ++stage) {
    const std::size_t shift = std::size_t{1} << stage;
    std::vector<Bus> next;
    next.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Bus& straight = current[i];
      const Bus& rotated = current[(i + shift) % n];
      next.push_back(mux_bus(amount[stage], straight, rotated));
    }
    current = std::move(next);
  }
  return current;
}

Builder::Priority Builder::priority_encode(const Bus& bits) {
  Priority p;
  p.valid = reduce_or(bits);
  std::size_t index_bits = 0;
  while ((std::size_t{1} << index_bits) < bits.size()) ++index_bits;
  if (index_bits == 0) index_bits = 1;

  // "No earlier bit set" chain.
  std::vector<NodeId> first;  // first[i] = bits[i] & !bits[0..i-1]
  NodeId none_before = nl_.constant(true);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    first.push_back(nl_.and_(bits[i], none_before));
    none_before = nl_.and_(none_before, nl_.not_(bits[i]));
  }

  p.index.reserve(index_bits);
  for (std::size_t bit = 0; bit < index_bits; ++bit) {
    Bus terms;
    for (std::size_t i = 0; i < bits.size(); ++i)
      if ((i >> bit) & 1u) terms.push_back(first[i]);
    p.index.push_back(terms.empty() ? nl_.constant(false) : reduce_or(terms));
  }
  return p;
}

}  // namespace p5::netlist
