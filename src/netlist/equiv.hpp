// Random-vector equivalence checking between two netlists — the light-weight
// stand-in for formal equivalence in a real hardware flow. Both circuits are
// driven with identical stimulus (matched by input label) over a number of
// clocked vectors and their outputs (matched by label) are compared each
// cycle. Sequential behaviour is covered because state diverges and stays
// diverged if any next-state function differs.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace p5::netlist {

struct EquivResult {
  bool equivalent = true;
  u64 vectors_run = 0;
  std::string mismatch;  ///< first differing output and cycle, if any

  explicit operator bool() const { return equivalent; }
};

/// Compare `a` and `b` on `vectors` random input vectors (each applied for
/// one clock). Input/output label sets must match exactly; a mismatch in
/// interface is reported as non-equivalence with a message.
[[nodiscard]] EquivResult random_equivalence(const Netlist& a, const Netlist& b, u64 vectors,
                                             u64 seed = 1);

}  // namespace p5::netlist
