// Word-parallel RFC 1662 octet stuffing/destuffing kernels.
//
// The wire image produced here is byte-identical to the scalar reference in
// fastpath/scalar_ref.hpp (and therefore to the seed implementation): the
// SWAR scan only changes *how fast* escape positions are found, never *which*
// octets are escaped. Escape-free runs are bulk-copied; the scalar path runs
// only around actual escapes.
#pragma once

#include "common/types.hpp"
#include "fastpath/slice_crc.hpp"
#include "hdlc/accm.hpp"

namespace p5::fastpath {

/// Exact number of octets that RFC 1662 stuffing would add.
[[nodiscard]] std::size_t count_escapes(BytesView data, const hdlc::Accm& accm);

/// Append the stuffed image of `data` to `out`.
void stuff_append(Bytes& out, BytesView data, const hdlc::Accm& accm);

/// Append the destuffed image of `data` (which must not contain flags) to
/// `out`. Returns false on a dangling escape at end of input.
[[nodiscard]] bool destuff_append(Bytes& out, BytesView data);

/// Fused framer kernel: append the stuffed image of `data` to `out` while
/// advancing the FCS register over the *unstuffed* octets in the same scan.
/// Returns the new raw CRC state.
[[nodiscard]] u32 stuff_crc_append(Bytes& out, BytesView data, const hdlc::Accm& accm,
                                   const SliceCrc& crc, u32 state);

}  // namespace p5::fastpath
