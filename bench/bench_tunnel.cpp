// bench_tunnel — socket-transport throughput for the P5 SONET stream.
//
// Rows, all wall-clock (this bench measures the transport and the host, not
// the cycle model's clock):
//
//  * stream_echo — raw StreamConn loopback echo: length-prefixed frames out
//    and back through the epoll loop with no P5 model attached. This is the
//    transport's own ceiling; it should sit orders of magnitude above the
//    cycle-tier figures.
//  * tunnel_tcp / tunnel_udp — a socketed endpoint pair (transport::Tunnel
//    at both ends over loopback) delivering datagrams end to end at the
//    cycle-accurate tier. Model-bound: the cycle P5 at each end simulates at
//    roughly the speed BENCH_linecard.json records, so these rows gate "the
//    tunnel does not get slower", not absolute socket speed.
//  * tunnel_tcp_fast / tunnel_udp_fast — the same pair at DeviceTier::kFast
//    (p5/fast_endpoint): the whole-frame batch datapath. These rows are the
//    tentpole gate — the fastpath tier must close the tunnel gap to within
//    the transport's own order of magnitude (>= 100 MB/s on the TCP row).
//
// Every tunnel row is duration-targeted: datagrams are submitted in bursts
// (keeping the 64-entry device ring topped up) until the target wall time
// elapses, then the tail drains. Throughput is delivered payload over the
// time to the last delivery, so a row's figure does not depend on a guessed
// frame count — the old fixed-150-frame rows under-ran the fast tier by
// three orders of magnitude.
//
// Results go to stdout and BENCH_tunnel.json. The JSON rows carry the
// bench_compare.py cell keys (now including the `tier` column); gate with
//   scripts/bench_compare.py BENCH_tunnel.json <baseline> --metric new_mb_s
// (the tunnel baseline tolerance is loose — wall time on shared CI swings).
//
// --pcap switches to trace-driven rows (pcap_tcp / pcap_udp): the bundled
// deterministic TCP trace (net/capture/trace_gen — real sequence/ack
// dynamics via TcpFlowGen, no external files) is replayed through the
// endpoint pair in a loop for the target duration. Output then goes to
// BENCH_capture.json (bench "capture"), and the run *gates itself* on the
// exact chunk ledger: frames_in == frames_out + frames_lost on every row,
// nonzero exit otherwise.
//
// Usage: bench_tunnel [--smoke] [--quick] [--pcap] [--out <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/capture/replay.hpp"
#include "net/capture/trace_gen.hpp"
#include "p5/endpoint.hpp"
#include "transport/conn.hpp"
#include "transport/event_loop.hpp"
#include "transport/tunnel.hpp"

namespace p5::bench {
namespace {

using transport::ConnConfig;
using transport::EventLoop;
using transport::Fd;
using transport::kReadable;
using transport::SocketAddr;
using transport::StreamConn;
using transport::TransportSnapshot;
using transport::TransportTelemetry;
using transport::Tunnel;
using transport::TunnelBinding;
using transport::TunnelConfig;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Row {
  std::string kernel;
  std::size_t frame_bytes = 0;
  std::string dispatch;
  std::string tier;  ///< "-" for rows with no P5 device in the path
  std::size_t frames = 0;
  u64 payload_bytes = 0;
  double wall_seconds = 0.0;
  double mb_s = 0.0;
  u64 syscalls = 0;        ///< socket send+recv calls across every conn in the row
  u64 pool_recycled = 0;   ///< chunk buffers served from pool free lists
  double frames_per_syscall = 0.0;

  /// Fill the batching-amortisation columns from the row's aggregated
  /// transport counters (both sides of the pair summed).
  void set_io(TransportSnapshot total) {
    syscalls = total.tx_syscalls + total.rx_syscalls;
    pool_recycled = total.pool_recycled;
    frames_per_syscall = total.frames_per_syscall();
  }
};

/// Raw StreamConn echo: `count` frames of `frame_bytes` out and back.
Row bench_stream_echo(std::size_t count, std::size_t frame_bytes) {
  EventLoop loop;
  TransportTelemetry ctel, stel;
  Fd listen_fd = transport::tcp_listen(SocketAddr{"127.0.0.1", 0});
  std::unique_ptr<StreamConn> server, client;
  ConnConfig scfg;
  scfg.send_watermark_bytes = 64 * 1024 * 1024;  // echo side is read-gated
  loop.add_fd(listen_fd.get(), kReadable, [&](u32) {
    Fd c = transport::tcp_accept(listen_fd.get());
    if (!c.valid()) return;
    server = std::make_unique<StreamConn>(loop, stel, scfg, std::move(c), false);
    server->set_on_frame([&](BytesView v) { (void)server->send_frame(v); });
  });
  bool in_progress = false;
  Fd c = transport::tcp_connect(SocketAddr{"127.0.0.1", transport::local_port(listen_fd.get())},
                                in_progress);
  client = std::make_unique<StreamConn>(loop, ctel, ConnConfig{}, std::move(c), in_progress);
  while (!server || !client->open()) loop.run_once(10);

  const Bytes frame = density_payload(frame_bytes, 0.0, 42);
  std::size_t echoed = 0;
  client->set_on_frame([&](BytesView) { ++echoed; });

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  while (echoed < count) {
    while (sent < count && client->send_frame(frame)) ++sent;
    loop.run_once(10);
  }
  Row r;
  r.kernel = "stream_echo";
  r.frame_bytes = frame_bytes;
  r.dispatch = "tcp";
  r.tier = "-";
  r.frames = count;
  r.payload_bytes = static_cast<u64>(count) * frame_bytes;
  r.wall_seconds = seconds_since(t0);
  // Payload octets that crossed the loop twice (out and back).
  r.mb_s = 2.0 * static_cast<double>(r.payload_bytes) / 1e6 / r.wall_seconds;
  TransportSnapshot io = ctel.snapshot();
  io += stel.snapshot();
  r.set_io(io);
  loop.remove_fd(listen_fd.get());
  return r;
}

/// Socketed endpoint pair at `tier`: submit datagrams of `dgram_len` in
/// bursts for `target_seconds` of wall time, drain, report delivered
/// payload over the time to the last delivery.
Row bench_tunnel_pair(bool udp, core::DeviceTier tier, double target_seconds,
                      std::size_t dgram_len) {
  EventLoop loop;
  auto ep_a = core::make_sonet_endpoint(tier, {}, sonet::kSts3c);
  auto ep_b = core::make_sonet_endpoint(tier, {}, sonet::kSts3c);
  TunnelConfig ca;
  ca.listen = true;
  ca.udp = udp;
  ca.port = 0;
  // Throughput posture: one pump slice drains the device's whole 64-entry
  // TX ring, and the batched conn sends the slice as one scatter-gather
  // syscall — the pooled-chunk path makes the bigger slice copy-free.
  ca.frames_per_pump = 64;
  Tunnel tun_a(loop, TunnelBinding::endpoint(*ep_a), ca);
  tun_a.start();
  TunnelConfig cb = ca;
  cb.listen = false;
  cb.udp = udp;
  cb.port = tun_a.bound_port();
  Tunnel tun_b(loop, TunnelBinding::endpoint(*ep_b), cb);
  tun_b.start();

  const Bytes payload = density_payload(dgram_len, 0.05, 7);
  const auto t0 = std::chrono::steady_clock::now();
  auto t_last = t0;
  std::size_t submitted = 0, delivered = 0;
  u64 delivered_bytes = 0;
  bool draining = false;
  int settle = 0;
  while (settle < 400) {
    if (!draining) {
      // Burst submission keeps the device's 64-entry transmit ring topped
      // up, so the batch tier encodes whole batches per pull instead of one
      // frame per pump slice.
      while (ep_b->submit_datagram(0x0021, payload)) ++submitted;
      if (seconds_since(t0) >= target_seconds) draining = true;
    }
    tun_a.pump();
    tun_b.pump();
    loop.run_once(draining ? 1 : 0);
    bool any = false;
    while (auto d = ep_a->reap_datagram()) {
      ++delivered;
      delivered_bytes += d->payload.size();
      any = true;
    }
    if (any) t_last = std::chrono::steady_clock::now();
    // UDP on loopback is effectively loss-free, but don't hang on a miracle.
    settle = (draining && !ep_b->tx_pending()) ? settle + 1 : 0;
  }
  Row r;
  r.kernel = std::string(udp ? "tunnel_udp" : "tunnel_tcp") +
             (tier == core::DeviceTier::kFast ? "_fast" : "");
  r.frame_bytes = dgram_len;
  r.dispatch = udp ? "udp" : "tcp";
  r.tier = core::to_string(tier);
  r.frames = delivered;
  r.payload_bytes = delivered_bytes;
  r.wall_seconds = std::chrono::duration<double>(t_last - t0).count();
  r.mb_s = r.wall_seconds > 0.0
               ? static_cast<double>(delivered_bytes) / 1e6 / r.wall_seconds
               : 0.0;
  TransportSnapshot io = tun_a.stats();
  io += tun_b.stats();
  r.set_io(io);
  return r;
}

/// Trace-driven row: replay the bundled deterministic TCP trace through a
/// socketed endpoint pair, looping it until `target_seconds` elapse. The
/// `ledger_ok` flag is the row's own acceptance gate.
struct PcapRow : Row {
  u64 trace_loops = 0;
  u64 replay_delivered = 0;
  bool ledger_ok = false;
};

PcapRow bench_pcap_pair(bool udp, core::DeviceTier tier, double target_seconds) {
  using net::capture::Pacing;
  using net::capture::PcapFile;
  using net::capture::TraceSource;

  net::capture::TraceGenConfig tcfg;
  tcfg.flows = 6;
  tcfg.packets = 512;
  tcfg.seed = 20260808;
  const PcapFile trace = net::capture::synthesize_tcp_trace(tcfg);
  u64 trace_bytes = 0;
  for (const auto& r : trace.records) trace_bytes += r.data.size();

  EventLoop loop;
  auto ep_a = core::make_sonet_endpoint(tier, {}, sonet::kSts3c);
  auto ep_b = core::make_sonet_endpoint(tier, {}, sonet::kSts3c);
  TunnelConfig ca;
  ca.listen = true;
  ca.udp = udp;
  ca.port = 0;
  ca.frames_per_pump = 64;
  Tunnel tun_a(loop, TunnelBinding::endpoint(*ep_a), ca);
  tun_a.start();
  TunnelConfig cb = ca;
  cb.listen = false;
  cb.port = tun_a.bound_port();
  Tunnel tun_b(loop, TunnelBinding::endpoint(*ep_b), cb);
  tun_b.start();

  const auto sink = net::capture::make_endpoint_sink(*ep_b);
  auto src = std::make_unique<TraceSource>(trace.meta, trace.records);

  PcapRow r;
  const auto t0 = std::chrono::steady_clock::now();
  auto t_last = t0;
  std::size_t delivered = 0;
  u64 delivered_bytes = 0;
  bool draining = false;
  int settle = 0;
  while (settle < 400) {
    if (!draining) {
      // As-fast-as-possible replay; when the trace runs dry, loop it — the
      // row is duration-targeted like every other tunnel row.
      src->pump(0, 64, sink);
      if (src->done()) {
        r.replay_delivered += src->stats().delivered;
        src = std::make_unique<TraceSource>(trace.meta, trace.records);
        ++r.trace_loops;
      }
      if (seconds_since(t0) >= target_seconds) {
        r.replay_delivered += src->stats().delivered;
        draining = true;
      }
    }
    tun_a.pump();
    tun_b.pump();
    loop.run_once(draining ? 1 : 0);
    bool any = false;
    while (auto d = ep_a->reap_datagram()) {
      ++delivered;
      delivered_bytes += d->payload.size();
      any = true;
    }
    if (any) t_last = std::chrono::steady_clock::now();
    settle = (draining && !ep_b->tx_pending()) ? settle + 1 : 0;
  }
  r.kernel = std::string(udp ? "pcap_udp" : "pcap_tcp");
  // Cell key stability: the mean trace record size is deterministic.
  r.frame_bytes = static_cast<std::size_t>(trace_bytes / trace.records.size());
  r.dispatch = udp ? "udp" : "tcp";
  r.tier = core::to_string(tier);
  r.frames = delivered;
  r.payload_bytes = delivered_bytes;
  r.wall_seconds = std::chrono::duration<double>(t_last - t0).count();
  r.mb_s = r.wall_seconds > 0.0
               ? static_cast<double>(delivered_bytes) / 1e6 / r.wall_seconds
               : 0.0;
  TransportSnapshot io = tun_a.stats();
  io += tun_b.stats();
  r.set_io(io);
  // The acceptance gate: the transport's chunk ledger must balance exactly
  // on both tunnels (TCP never loses; UDP losses must be *accounted*).
  const TransportSnapshot sa = tun_a.stats(), sb = tun_b.stats();
  r.ledger_ok = sa.frames_in == sa.frames_out + sa.frames_lost &&
                sb.frames_in == sb.frames_out + sb.frames_lost;
  return r;
}

int run_pcap(bool smoke, bool quick, const std::string& out_path) {
  const double target_s = smoke ? 0.05 : quick ? 0.4 : 1.5;
  banner("bench_tunnel --pcap — trace-driven transport rows",
         "the bundled deterministic TCP trace replayed over the socketed P5 pair");
  paper_says("real IP datagram mixes, not synthetic IMIX, prove the datapath");

  std::vector<PcapRow> rows;
  rows.push_back(bench_pcap_pair(false, core::DeviceTier::kFast, target_s));
  rows.push_back(bench_pcap_pair(true, core::DeviceTier::kFast, target_s));
  rows.push_back(bench_pcap_pair(false, core::DeviceTier::kCycle, target_s));

  bool all_ok = true;
  for (const PcapRow& r : rows) {
    std::printf("%-10s %5zuB x %8zu  %8.3fs  %10.2f MB/s  loops %llu  ledger %s (%s, tier %s)\n",
                r.kernel.c_str(), r.frame_bytes, r.frames, r.wall_seconds, r.mb_s,
                static_cast<unsigned long long>(r.trace_loops),
                r.ledger_ok ? "OK" : "VIOLATED", r.dispatch.c_str(), r.tier.c_str());
    all_ok = all_ok && r.ledger_ok;
  }

  JsonReport report("capture");
  report.header.set("unit", "MB/s").set("mode", smoke ? "smoke" : quick ? "quick" : "full");
  for (const PcapRow& r : rows) {
    report.row()
        .set("kernel", r.kernel)
        .set("frame_bytes", r.frame_bytes)
        .set("escape_density", 0.0)
        .set("dispatch", r.dispatch)
        .set("tier", r.tier)
        .set("pinned", false)
        .set("frames", r.frames)
        .set("payload_bytes", r.payload_bytes)
        .set("trace_loops", r.trace_loops)
        .set("replay_delivered", r.replay_delivered)
        .set("ledger_ok", r.ledger_ok)
        .set("wall_seconds", r.wall_seconds)
        .set("syscalls", r.syscalls)
        .set("frames_per_syscall", r.frames_per_syscall)
        .set("new_mb_s", r.mb_s);
  }
  if (!report.write(out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)%s\n", out_path.c_str(), rows.size(),
              smoke ? " [smoke mode: timings are not meaningful]" : "");
  if (!all_ok) {
    std::fprintf(stderr, "error: chunk ledger violated on a pcap row\n");
    return 1;
  }
  we_measure("pcap replay over the fast-tier TCP tunnel: " + std::to_string(rows[0].mb_s) +
             " MB/s wall, ledger exact on every row");
  return 0;
}

int run(int argc, char** argv) {
  bool smoke = false, quick = false, pcap = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--pcap") == 0) pcap = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  if (out_path.empty()) out_path = pcap ? "BENCH_capture.json" : "BENCH_tunnel.json";
  if (pcap) return run_pcap(smoke, quick, out_path);
  const std::size_t echo_frames = smoke ? 200 : quick ? 4000 : 20000;
  const double target_s = smoke ? 0.05 : quick ? 0.4 : 1.5;

  banner("bench_tunnel — socket transport for P5 SONET streams",
         "carries the paper's STS-Nc byte stream between real processes");
  paper_says("2.488 Gbps sustained on the wire; here the wire is a kernel socket");

  std::vector<Row> rows;
  for (const std::size_t fb : {std::size_t{256}, std::size_t{2048}})
    rows.push_back(bench_stream_echo(echo_frames, fb));
  for (const core::DeviceTier tier : {core::DeviceTier::kCycle, core::DeviceTier::kFast}) {
    rows.push_back(bench_tunnel_pair(false, tier, target_s, 1024));
    rows.push_back(bench_tunnel_pair(true, tier, target_s, 1024));
  }

  for (const Row& r : rows) {
    std::printf("%-16s %5zuB x %8zu  %8.3fs  %10.2f MB/s  %6.1f fr/sys (%s, tier %s)\n",
                r.kernel.c_str(), r.frame_bytes, r.frames, r.wall_seconds, r.mb_s,
                r.frames_per_syscall, r.dispatch.c_str(), r.tier.c_str());
  }

  JsonReport report("tunnel");
  report.header.set("unit", "MB/s").set("mode", smoke ? "smoke" : quick ? "quick" : "full");
  for (const Row& r : rows) {
    report.row()
        .set("kernel", r.kernel)
        .set("frame_bytes", r.frame_bytes)
        .set("escape_density", 0.05)
        .set("dispatch", r.dispatch)
        .set("tier", r.tier)
        .set("pinned", false)
        .set("frames", r.frames)
        .set("payload_bytes", r.payload_bytes)
        .set("wall_seconds", r.wall_seconds)
        .set("syscalls", r.syscalls)
        .set("frames_per_syscall", r.frames_per_syscall)
        .set("pool_recycled", r.pool_recycled)
        .set("new_mb_s", r.mb_s);
  }
  if (!report.write(out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)%s\n", out_path.c_str(), rows.size(),
              smoke ? " [smoke mode: timings are not meaningful]" : "");
  we_measure("tunnel TCP cycle tier: " + std::to_string(rows[2].mb_s) +
             " MB/s wall; fast tier: " + std::to_string(rows[4].mb_s) +
             " MB/s (see stream_echo for the transport ceiling)");
  return 0;
}

}  // namespace
}  // namespace p5::bench

int main(int argc, char** argv) { return p5::bench::run(argc, argv); }
