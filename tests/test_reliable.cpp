// RFC 1663 numbered-mode (PPP Reliable Transmission) tests: control-octet
// codec, window behaviour, T1/REJ recovery under loss, duplicate discard,
// and full integration through the P5 datapath with per-frame Control
// overrides.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "p5/p5.hpp"
#include "ppp/reliable.hpp"

namespace p5::ppp {
namespace {

// ---- control octet codec ----

TEST(NumberedMode, ControlOctetCodec) {
  for (u8 ns = 0; ns < 8; ++ns)
    for (u8 nr = 0; nr < 8; ++nr) {
      const u8 i = make_i_frame(ns, nr);
      EXPECT_TRUE(is_i_frame(i));
      EXPECT_FALSE(is_rr(i));
      EXPECT_EQ(i_frame_ns(i), ns);
      EXPECT_EQ(frame_nr(i), nr);
    }
  for (u8 nr = 0; nr < 8; ++nr) {
    EXPECT_TRUE(is_rr(make_rr(nr)));
    EXPECT_FALSE(is_i_frame(make_rr(nr)));
    EXPECT_EQ(frame_nr(make_rr(nr)), nr);
    EXPECT_TRUE(is_rej(make_rej(nr)));
    EXPECT_EQ(frame_nr(make_rej(nr)), nr);
  }
}

TEST(NumberedMode, UiControlIsNotNumbered) {
  // 0x03 (unnumbered information) must not parse as an I-frame ack pair.
  EXPECT_FALSE(is_i_frame(0x03));
  EXPECT_FALSE(is_rr(0x03));
  EXPECT_FALSE(is_rej(0x03));
}

// ---- paired links over a controllable channel ----

struct Channel {
  struct Frame {
    u8 control;
    Bytes payload;
  };
  std::deque<Frame> a_to_b, b_to_a;
  // Loss schedule: indices of A->B transmissions to drop (0-based).
  std::vector<u64> drop_ab;
  u64 ab_count = 0;
};

struct Pair {
  Channel ch;
  std::vector<Bytes> a_rx, b_rx;
  std::unique_ptr<ReliableLink> a, b;

  explicit Pair(ReliableConfig cfg = {}) {
    a = std::make_unique<ReliableLink>(
        cfg,
        [this](u8 c, BytesView p) {
          const u64 idx = ch.ab_count++;
          for (const u64 d : ch.drop_ab)
            if (d == idx) return;  // lost on the air
          ch.a_to_b.push_back({c, Bytes(p.begin(), p.end())});
        },
        [this](BytesView p) { a_rx.emplace_back(p.begin(), p.end()); });
    b = std::make_unique<ReliableLink>(
        cfg, [this](u8 c, BytesView p) { ch.b_to_a.push_back({c, Bytes(p.begin(), p.end())}); },
        [this](BytesView p) { b_rx.emplace_back(p.begin(), p.end()); });
  }

  void pump() {
    for (int i = 0; i < 100 && (!ch.a_to_b.empty() || !ch.b_to_a.empty()); ++i) {
      std::deque<Channel::Frame> qa, qb;
      std::swap(qa, ch.a_to_b);
      std::swap(qb, ch.b_to_a);
      for (auto& f : qa) b->on_frame(f.control, f.payload);
      for (auto& f : qb) a->on_frame(f.control, f.payload);
    }
  }
};

TEST(ReliableLink, InOrderDeliveryCleanChannel) {
  Pair pair;
  std::vector<Bytes> sent;
  for (int i = 0; i < 20; ++i) {
    Bytes p{static_cast<u8>(i), static_cast<u8>(i * 3)};
    sent.push_back(p);
    pair.a->send(std::move(p));
    pair.pump();
  }
  EXPECT_EQ(pair.b_rx, sent);
  EXPECT_EQ(pair.a->stats().retransmissions, 0u);
  EXPECT_EQ(pair.a->unacked(), 0u);
}

TEST(ReliableLink, WindowLimitsOutstandingFrames) {
  ReliableConfig cfg;
  cfg.window = 3;
  Pair pair(cfg);
  // No pumping: nothing gets acknowledged.
  for (int i = 0; i < 10; ++i) pair.a->send(Bytes{static_cast<u8>(i)});
  EXPECT_EQ(pair.a->unacked(), 3u);
  EXPECT_EQ(pair.a->backlog(), 7u);
  EXPECT_EQ(pair.ch.ab_count, 3u);  // only the window went on the air
  pair.pump();
  EXPECT_EQ(pair.b_rx.size(), 10u);
  EXPECT_EQ(pair.a->unacked(), 0u);
}

TEST(ReliableLink, LostFrameRecoveredByRej) {
  Pair pair;
  pair.ch.drop_ab = {1};  // lose the 2nd I-frame
  for (int i = 0; i < 5; ++i) pair.a->send(Bytes{static_cast<u8>(0x40 + i)});
  pair.pump();
  ASSERT_EQ(pair.b_rx.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(pair.b_rx[i], Bytes{static_cast<u8>(0x40 + i)});
  EXPECT_GE(pair.b->stats().rejs_sent, 1u);
  EXPECT_GE(pair.a->stats().retransmissions, 1u);
  EXPECT_GE(pair.b->stats().duplicates, 1u);  // go-back-N re-sends 2..4 too
}

TEST(ReliableLink, LostAckRecoveredByT1) {
  Pair pair;
  // Single frame; its RR ack gets lost (drop nothing on data path, but
  // intercept b->a by clearing the queue once).
  pair.a->send(Bytes{0x77});
  // Deliver I-frame to b, then discard b's RR.
  ASSERT_EQ(pair.ch.a_to_b.size(), 1u);
  pair.b->on_frame(pair.ch.a_to_b.front().control, pair.ch.a_to_b.front().payload);
  pair.ch.a_to_b.clear();
  pair.ch.b_to_a.clear();  // the ack vanishes
  EXPECT_EQ(pair.a->unacked(), 1u);

  // T1 fires: a retransmits; b sees a duplicate, REJs with the current
  // N(R), which acknowledges the frame.
  for (int t = 0; t < 5; ++t) pair.a->tick();
  pair.pump();
  EXPECT_EQ(pair.a->unacked(), 0u);
  EXPECT_EQ(pair.b_rx.size(), 1u);          // delivered exactly once
  EXPECT_GE(pair.b->stats().duplicates, 1u);
  EXPECT_GE(pair.a->stats().retransmissions, 1u);
}

TEST(ReliableLink, SequenceNumbersWrapModulo8) {
  Pair pair;
  std::vector<Bytes> sent;
  for (int i = 0; i < 40; ++i) {  // several times around the mod-8 space
    Bytes p{static_cast<u8>(i)};
    sent.push_back(p);
    pair.a->send(std::move(p));
    pair.pump();
  }
  EXPECT_EQ(pair.b_rx, sent);
}

TEST(ReliableLink, BidirectionalTraffic) {
  Pair pair;
  std::vector<Bytes> sa, sb;
  for (int i = 0; i < 15; ++i) {
    Bytes pa{static_cast<u8>(i)};
    Bytes pb{static_cast<u8>(0x80 + i)};
    sa.push_back(pa);
    sb.push_back(pb);
    pair.a->send(std::move(pa));
    pair.b->send(std::move(pb));
    pair.pump();
  }
  EXPECT_EQ(pair.b_rx, sa);
  EXPECT_EQ(pair.a_rx, sb);
}

TEST(ReliableLink, GivesUpAfterN2) {
  ReliableConfig cfg;
  cfg.max_retransmit = 3;
  cfg.t1_ticks = 1;
  Pair pair(cfg);
  // Black-hole channel.
  pair.a->send(Bytes{1});
  pair.ch.a_to_b.clear();
  for (int t = 0; t < 20; ++t) {
    pair.a->tick();
    pair.ch.a_to_b.clear();
  }
  EXPECT_TRUE(pair.a->failed());
}

TEST(ReliableLink, RandomLossEventuallyDeliversEverything) {
  Xoshiro256 rng(17);
  ReliableConfig cfg;
  cfg.window = 4;
  // Build a lossy pair manually: drop 25% of every transmission both ways.
  std::deque<std::pair<u8, Bytes>> qa, qb;
  std::vector<Bytes> got;
  std::unique_ptr<ReliableLink> a, b;
  a = std::make_unique<ReliableLink>(
      cfg,
      [&](u8 c, BytesView p) {
        if (!rng.chance(0.25)) qa.emplace_back(c, Bytes(p.begin(), p.end()));
      },
      [](BytesView) {});
  b = std::make_unique<ReliableLink>(
      cfg,
      [&](u8 c, BytesView p) {
        if (!rng.chance(0.25)) qb.emplace_back(c, Bytes(p.begin(), p.end()));
      },
      [&](BytesView p) { got.emplace_back(p.begin(), p.end()); });

  std::vector<Bytes> sent;
  for (int i = 0; i < 30; ++i) {
    Bytes p = rng.bytes(rng.range(1, 50));
    sent.push_back(p);
    a->send(std::move(p));
  }
  for (int round = 0; round < 3000 && got.size() < sent.size(); ++round) {
    std::deque<std::pair<u8, Bytes>> fa, fb;
    std::swap(fa, qa);
    std::swap(fb, qb);
    for (auto& [c, p] : fa) b->on_frame(c, p);
    for (auto& [c, p] : fb) a->on_frame(c, p);
    if (round % 3 == 2) {
      a->tick();
      b->tick();
    }
  }
  EXPECT_EQ(got, sent);
  EXPECT_GT(a->stats().retransmissions, 0u);
}

// ---- through the P5 datapath ----

TEST(ReliableLink, RunsThroughP5WithControlOverride) {
  core::P5Config cfg;
  cfg.lanes = 4;
  core::P5 dev(cfg);

  std::vector<Bytes> delivered;
  std::vector<u8> controls_seen;
  dev.set_rx_sink([&](core::RxDelivery d) {
    controls_seen.push_back(d.control);
    delivered.push_back(std::move(d.payload));
  });

  // Send three I-frames with distinct sequence numbers through the device.
  for (u8 ns = 0; ns < 3; ++ns) {
    core::TxRequest req;
    req.protocol = 0x0021;
    req.control = make_i_frame(ns, 0);
    req.payload = Bytes{static_cast<u8>(0xA0 + ns)};
    dev.submit_frame(std::move(req));
  }
  for (int k = 0; k < 300; ++k) dev.phy_push_rx(dev.phy_pull_tx(4));
  dev.drain_rx(100);

  ASSERT_EQ(delivered.size(), 3u);
  for (u8 ns = 0; ns < 3; ++ns) {
    EXPECT_EQ(controls_seen[ns], make_i_frame(ns, 0));
    EXPECT_EQ(delivered[ns], Bytes{static_cast<u8>(0xA0 + ns)});
  }
}

}  // namespace
}  // namespace p5::ppp
