# Empty dependencies file for test_p5_system.
# This may be replaced when dependencies are built.
