// Whole-system synthesis assembly: the complete P5 (Transmitter + Receiver
// + Protocol OAM) as the per-module area/timing report the paper's Tables
// 1 and 2 are built from. Synthesis is hierarchical: each block is mapped
// to 4-input LUTs independently and the system totals are the sums, exactly
// how a constraint-free Synplicity run reports a design of this shape.
#pragma once

#include "netlist/area_report.hpp"

namespace p5::netlist::circuits {

/// Full P5 system report for the given datapath width (lanes = width/8):
/// TX control + TX CRC + Escape Generate + flag inserter,
/// RX delineator + Escape Detect + RX CRC + RX control, and the OAM block.
[[nodiscard]] AreaReport p5_system_report(unsigned lanes);

/// Single-module report (paper Table 3 uses Escape Generate alone).
[[nodiscard]] AreaReport escape_generate_report(unsigned lanes);

}  // namespace p5::netlist::circuits
