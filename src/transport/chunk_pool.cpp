#include "transport/chunk_pool.hpp"

#include "common/check.hpp"
#include "transport/stats.hpp"

namespace p5::transport {

struct ChunkPool::Core {
  Config cfg;
  TransportTelemetry* tel = nullptr;
  std::vector<ChunkRef::Chunk*> free_list;
  bool closed = false;
  std::atomic<u64> allocated{0};
  std::atomic<u64> recycled{0};
  std::atomic<u64> outstanding{0};
};

struct ChunkRef::Chunk {
  Bytes data;
  u32 refs = 0;
  std::shared_ptr<ChunkPool::Core> core;
};

Bytes& ChunkRef::data() {
  P5_EXPECTS(c_ != nullptr);
  return c_->data;
}

const Bytes& ChunkRef::data() const {
  P5_EXPECTS(c_ != nullptr);
  return c_->data;
}

BytesView ChunkRef::view() const {
  P5_EXPECTS(c_ != nullptr);
  return BytesView(c_->data.data(), c_->data.size());
}

void ChunkRef::retain() {
  if (c_) ++c_->refs;
}

void ChunkRef::release() {
  Chunk* c = std::exchange(c_, nullptr);
  if (c == nullptr || --c->refs > 0) return;
  ChunkPool::Core& core = *c->core;
  core.outstanding.fetch_sub(1, std::memory_order_relaxed);
  if (core.closed || core.free_list.size() >= core.cfg.max_free) {
    delete c;  // the chunk outlived its pool (or the list is full): just free
    return;
  }
  c->data.clear();
  if (c->data.capacity() > core.cfg.retain_capacity) {
    Bytes().swap(c->data);  // give oversize capacity back to the allocator
  }
  core.free_list.push_back(c);
}

ChunkPool::ChunkPool() : ChunkPool(nullptr, Config{}) {}

ChunkPool::ChunkPool(TransportTelemetry* tel) : ChunkPool(tel, Config{}) {}

ChunkPool::ChunkPool(TransportTelemetry* tel, Config cfg) : core_(std::make_shared<Core>()) {
  core_->cfg = cfg;
  core_->tel = tel;
}

ChunkPool::~ChunkPool() {
  core_->closed = true;
  core_->tel = nullptr;
  for (ChunkRef::Chunk* c : core_->free_list) delete c;
  core_->free_list.clear();
  // Outstanding chunks hold the core alive and free themselves on release.
}

ChunkRef ChunkPool::acquire(std::size_t reserve_bytes) {
  ChunkRef::Chunk* c;
  if (!core_->free_list.empty()) {
    c = core_->free_list.back();
    core_->free_list.pop_back();
    core_->recycled.fetch_add(1, std::memory_order_relaxed);
    if (core_->tel) core_->tel->pool_recycled();
  } else {
    c = new ChunkRef::Chunk;
    c->core = core_;
    core_->allocated.fetch_add(1, std::memory_order_relaxed);
  }
  c->data.clear();
  c->data.reserve(reserve_bytes);
  c->refs = 1;
  core_->outstanding.fetch_add(1, std::memory_order_relaxed);
  return ChunkRef(c);
}

ChunkPool::Counters ChunkPool::counters() const {
  Counters out;
  out.allocated = core_->allocated.load(std::memory_order_relaxed);
  out.recycled = core_->recycled.load(std::memory_order_relaxed);
  out.outstanding = core_->outstanding.load(std::memory_order_relaxed);
  return out;
}

}  // namespace p5::transport
