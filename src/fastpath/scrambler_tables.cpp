#include "fastpath/scrambler_tables.hpp"

namespace p5::fastpath {

namespace {

constexpr std::array<FrameScramblerStep, 128> build_table() {
  std::array<FrameScramblerStep, 128> t{};
  for (u32 s = 0; s < 128; ++s) {
    u8 state = static_cast<u8>(s);
    u8 out = 0;
    for (int i = 0; i < 8; ++i) {
      // Feedback tap: x^7 + x^6 + 1 — new bit = s6 XOR s5 (0-indexed MSB=s6).
      const u8 bit = static_cast<u8>((state >> 6) & 1u);
      out = static_cast<u8>((out << 1) | bit);
      const u8 fb = static_cast<u8>(((state >> 6) ^ (state >> 5)) & 1u);
      state = static_cast<u8>(((state << 1) | fb) & 0x7F);
    }
    t[s] = FrameScramblerStep{out, state};
  }
  return t;
}

constexpr std::array<FrameScramblerStep, 128> kTable = build_table();

}  // namespace

const std::array<FrameScramblerStep, 128>& frame_scrambler_steps() { return kTable; }

}  // namespace p5::fastpath
