# Empty dependencies file for hardware_export.
# This may be replaced when dependencies are built.
