# Empty dependencies file for p5_sonet.
# This may be replaced when dependencies are built.
