// Framed, nonblocking connections over the event loop.
//
// Two concrete carriers share one interface:
//   * StreamConn — TCP with a u32 big-endian length prefix per chunk and a
//     bounded write queue. The queue is the backpressure coupling point: the
//     tunnel stops pulling from its SpscRing-fed binding while queued bytes
//     sit at the watermark, so socket stalls propagate back into the same
//     flow control the line card already uses. The queue holds pooled
//     ChunkRefs and flushes through one scatter-gather sendmsg spanning up
//     to IOV_MAX queued chunks, so a pump slice's worth of frames shares a
//     single syscall.
//   * DgramConn — UDP, one SONET chunk per datagram. No delivery promise; a
//     datagram the kernel refuses is counted lost on the spot, and the
//     x^43+1 self-synchronous scrambler lets the far deframer ride through
//     the gap. Sends stage into a small pooled batch flushed via sendmmsg;
//     receives drain the socket kDgramBatch datagrams per recvmmsg.
//
// Batching is config- and env-gated (ConnConfig::batch, P5_TX_BATCH —
// resolve_io_batch() mirrors resolve_device_tier: the env only decides
// IoBatch::kAuto, an explicit pin always wins). With batching off the
// carriers reproduce the original frame-at-a-time syscall pattern and
// per-frame delivery exactly; ledgers are identical either way.
//
// Callback discipline (the rules that keep use-after-free away):
//   * A Conn never destroys itself; on_closed is invoked from the conn's own
//     stack, so the owner must not reset its pointer there — it swaps the
//     object out at the next establishment or in its destructor.
//   * close() is idempotent and deregisters from the loop immediately;
//     no callback fires after it returns.
//   * on_frames spans (and the BytesViews inside) are valid only for the
//     duration of the callback; they alias the conn's RX buffer.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "transport/chunk_pool.hpp"
#include "transport/event_loop.hpp"
#include "transport/socket.hpp"
#include "transport/stats.hpp"

namespace p5::transport {

/// Batched-I/O selection: kAuto defers to the P5_TX_BATCH environment
/// override (default on), an explicit kOn/kOff is taken literally.
enum class IoBatch : u8 { kAuto, kOn, kOff };

/// Apply the `P5_TX_BATCH` environment override: "0" forces the batch legs
/// off, "1" (or any other non-"0" value) forces them on, when `configured`
/// is kAuto. Explicit pins are returned unchanged — call sites that must
/// compare both paths in one process pin and are immune to the environment.
[[nodiscard]] bool resolve_io_batch(IoBatch configured);

struct ConnConfig {
  std::size_t send_watermark_bytes = 256 * 1024;  ///< queue cap before stalls
  std::size_t max_frame_bytes = 4 * 1024 * 1024;  ///< length-prefix sanity bound
  std::size_t read_chunk_bytes = 64 * 1024;       ///< per-readable recv slice
  std::size_t rx_retain_bytes = 1024 * 1024;      ///< RX buffer capacity kept after a burst
  int so_sndbuf_bytes = 0;  ///< setsockopt(SO_SNDBUF) at adoption; 0 = kernel default
  IoBatch batch = IoBatch::kAuto;  ///< scatter-gather TX / mmsg legs / burst delivery
};

/// One framed bidirectional connection bound to an EventLoop.
class Conn {
 public:
  using FrameCallback = std::function<void(BytesView)>;
  using FramesCallback = std::function<void(std::span<const BytesView>)>;

  Conn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg)
      : loop_(loop), stats_(stats), cfg_(cfg) {}
  virtual ~Conn() = default;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Accept one chunk for transmission. Returns false (without consuming the
  /// chunk into the counters) when the connection cannot take it — closed, or
  /// the write queue already at its watermark.
  virtual bool send_frame(BytesView payload) = 0;

  /// Push staged TX to the socket now. Pumps call this once at the end of a
  /// fill slice so the whole burst shares one sendmsg/sendmmsg; between
  /// explicit flushes the event loop's writability events drain the queue.
  virtual void flush() {}

  [[nodiscard]] virtual bool open() const = 0;
  /// True when send_frame would accept a chunk right now.
  [[nodiscard]] virtual bool writable() const = 0;
  [[nodiscard]] virtual std::size_t queued_bytes() const { return 0; }
  [[nodiscard]] virtual std::size_t queued_frames() const { return 0; }

  /// Graceful shutdown: flush what is queued, then half-close the send side
  /// and fire on_drained. Datagram carriers drain instantly.
  virtual void request_drain() = 0;
  /// Hard close: deregister, count still-queued chunks as lost, fire
  /// on_closed (unless already closed).
  virtual void close() = 0;

  void set_on_frame(FrameCallback cb) { on_frame_ = std::move(cb); }
  /// Batched sibling of on_frame: one call per parse/recv burst, with every
  /// chunk of the burst. Takes precedence over on_frame when set; with
  /// batching off it still fires, but with single-element spans, preserving
  /// frame-at-a-time delivery order and semantics.
  void set_on_frames(FramesCallback cb) { on_frames_ = std::move(cb); }
  void set_on_open(std::function<void()> cb) { on_open_ = std::move(cb); }
  void set_on_closed(std::function<void()> cb) { on_closed_ = std::move(cb); }
  void set_on_drained(std::function<void()> cb) { on_drained_ = std::move(cb); }

  [[nodiscard]] u64 last_rx_ms() const { return last_rx_ms_; }

 protected:
  /// Route a parsed burst through whichever callback is wired, honouring the
  /// batch gate. Returns false when a callback closed the connection.
  bool deliver_frames(std::span<const BytesView> frames, bool batched);

  EventLoop& loop_;
  TransportTelemetry& stats_;
  ConnConfig cfg_;
  FrameCallback on_frame_;
  FramesCallback on_frames_;
  std::function<void()> on_open_;
  std::function<void()> on_closed_;
  std::function<void()> on_drained_;
  u64 last_rx_ms_ = 0;
};

/// TCP carrier: [u32 BE length][payload] per chunk, write-queue backpressure.
class StreamConn final : public Conn {
 public:
  /// Takes ownership of `fd`. `connecting` marks an EINPROGRESS socket: the
  /// conn watches for writability, checks SO_ERROR, then fires on_open (or
  /// on_closed if the handshake failed). Accepted / already-established
  /// sockets pass false and are open immediately; on_open is deferred
  /// through a zero-delay timer so the owner can finish wiring callbacks.
  /// `pool`, when given, must outlive the conn (a Tunnel or Shard sharing
  /// one pool across reconnects); nullptr gets a private pool.
  StreamConn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg, Fd fd, bool connecting,
             ChunkPool* pool = nullptr);
  ~StreamConn() override { close_internal(false); }

  bool send_frame(BytesView payload) override;
  void flush() override;
  [[nodiscard]] bool open() const override { return fd_.valid() && established_; }
  [[nodiscard]] bool writable() const override {
    return open() && !draining_ && queued_bytes_ < cfg_.send_watermark_bytes;
  }
  [[nodiscard]] std::size_t queued_bytes() const override { return queued_bytes_; }
  [[nodiscard]] std::size_t queued_frames() const override { return queue_.size(); }
  void request_drain() override;
  void close() override { close_internal(true); }

  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  void handle_events(u32 events);
  void finish_connect();
  void flush_write();
  void read_some();
  void ensure_rx_room();
  bool parse_frames();
  void update_interest();
  void close_internal(bool notify);

  Fd fd_;
  EventLoop::TimerId open_timer_ = 0;  ///< deferred on_open; cancelled on close
  bool established_ = false;
  bool draining_ = false;
  bool drained_notified_ = false;
  bool closing_ = false;  ///< re-entrancy latch for close_internal
  bool batch_ = true;     ///< resolve_io_batch(cfg.batch), frozen at adoption

  ChunkPool* pool_ = nullptr;            ///< where send_frame gets its buffers
  std::unique_ptr<ChunkPool> own_pool_;  ///< fallback when none was shared
  std::deque<ChunkRef> queue_;
  std::size_t head_off_ = 0;  ///< octets of the queue head already written
  std::size_t queued_bytes_ = 0;

  // RX accumulator: rx_buf_.size() is allocated room, live octets sit in
  // [rx_off_, rx_len_). The cursor replaces erase-front compaction — the
  // buffer is memmoved only when the dead prefix passes a threshold or room
  // runs out, and fully-parsed bursts reset the cursors for free.
  Bytes rx_buf_;
  std::size_t rx_off_ = 0;
  std::size_t rx_len_ = 0;
  std::vector<BytesView> frame_views_;  ///< scratch for one parse burst
};

/// UDP carrier: one chunk per datagram, fire-and-forget.
class DgramConn final : public Conn {
 public:
  /// `learn_peer` is the listener side: the socket is bound but unconnected,
  /// and the first datagram's source becomes the send destination. `pool`
  /// as for StreamConn.
  DgramConn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg, Fd fd, bool learn_peer,
            ChunkPool* pool = nullptr);
  ~DgramConn() override { close_internal(false); }

  bool send_frame(BytesView payload) override;
  void flush() override;
  [[nodiscard]] bool open() const override { return fd_.valid(); }
  [[nodiscard]] bool writable() const override { return open() && has_peer_; }
  [[nodiscard]] std::size_t queued_bytes() const override { return stage_bytes_; }
  [[nodiscard]] std::size_t queued_frames() const override { return stage_.size(); }
  void request_drain() override;
  void close() override { close_internal(true); }

  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] bool has_peer() const { return has_peer_; }

  /// Datagrams staged / socket slots drained per mmsg syscall.
  static constexpr std::size_t kDgramBatch = 16;

 private:
  void read_some();
  void read_some_serial();
  void flush_stage();
  void update_interest();
  void close_internal(bool notify);

  Fd fd_;
  EventLoop::TimerId open_timer_ = 0;  ///< deferred on_open; cancelled on close
  bool has_peer_ = false;
  bool closing_ = false;
  bool batch_ = true;

  ChunkPool* pool_ = nullptr;
  std::unique_ptr<ChunkPool> own_pool_;
  std::vector<ChunkRef> stage_;  ///< datagrams awaiting one sendmmsg
  std::size_t stage_bytes_ = 0;

  Bytes rx_buf_;                        ///< serial-leg receive buffer
  std::vector<Bytes> rx_slots_;         ///< recvmmsg slots, kDgramBatch x 64 KiB
  std::vector<BytesView> frame_views_;  ///< scratch for one recv burst
};

}  // namespace p5::transport
