# Empty compiler generated dependencies file for gigabit_link.
# This may be replaced when dependencies are built.
