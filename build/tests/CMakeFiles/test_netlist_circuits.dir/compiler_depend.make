# Empty compiler generated dependencies file for test_netlist_circuits.
# This may be replaced when dependencies are built.
