#include "p5/sonet_link.hpp"

namespace p5::core {

P5SonetLink::P5SonetLink(const P5Config& cfg, sonet::StsSpec sts,
                         const sonet::LineConfig& line_cfg)
    : P5SonetLink(cfg, cfg, sts, line_cfg) {}

P5SonetLink::P5SonetLink(const P5Config& a_cfg, const P5Config& b_cfg, sonet::StsSpec sts,
                         const sonet::LineConfig& line_cfg)
    : sts_(sts),
      a_(std::make_unique<P5>(a_cfg)),
      b_(std::make_unique<P5>(b_cfg)),
      host_engine_(a_cfg.accm),
      line_ab_(line_cfg),
      line_ba_(sonet::LineConfig{line_cfg.bit_error_rate, line_cfg.burst_enter,
                                 line_cfg.burst_exit, line_cfg.burst_error_rate,
                                 line_cfg.seed + 1}) {
  // Zero-alloc scrambling: TX scrambles the pulled chunk in place; RX reuses
  // a per-direction scratch buffer whose capacity stabilises after the first
  // SONET frame.
  framer_a_ = std::make_unique<sonet::SonetFramer>(sts, [this](std::size_t n) {
    Bytes chunk = a_->phy_pull_tx(n);
    scr_a_tx_.scramble_in_place(chunk);
    return chunk;
  });
  framer_b_ = std::make_unique<sonet::SonetFramer>(sts, [this](std::size_t n) {
    Bytes chunk = b_->phy_pull_tx(n);
    scr_b_tx_.scramble_in_place(chunk);
    return chunk;
  });
  deframer_b_ = std::make_unique<sonet::SonetDeframer>(sts, [this](BytesView payload) {
    rx_scratch_b_.assign(payload.begin(), payload.end());
    scr_b_rx_.descramble_in_place(rx_scratch_b_);
    b_->phy_push_rx(rx_scratch_b_);
  });
  deframer_a_ = std::make_unique<sonet::SonetDeframer>(sts, [this](BytesView payload) {
    rx_scratch_a_.assign(payload.begin(), payload.end());
    scr_a_rx_.descramble_in_place(rx_scratch_a_);
    a_->phy_push_rx(rx_scratch_a_);
  });
}

void P5SonetLink::exchange_frames(std::size_t frames) {
  for (std::size_t i = 0; i < frames; ++i) {
    Bytes ab = line_ab_.transfer(framer_a_->next_frame());
    if (tap_ab_) tap_ab_(ab);
    deframer_b_->push(ab);
    Bytes ba = line_ba_.transfer(framer_b_->next_frame());
    if (tap_ba_) tap_ba_(ba);
    deframer_a_->push(ba);
  }
}

}  // namespace p5::core
