# Empty compiler generated dependencies file for test_sonet.
# This may be replaced when dependencies are built.
