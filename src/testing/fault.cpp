#include "testing/fault.hpp"

#include <cmath>

#include "hdlc/accm.hpp"

namespace p5::testing {

FaultSpec FaultSpec::clean(u64 seed) {
  FaultSpec s;
  s.seed = seed;
  return s;
}

FaultSpec FaultSpec::ber(double rate, u64 seed) {
  FaultSpec s;
  s.bit_error_rate = rate;
  s.seed = seed;
  return s;
}

FaultSpec FaultSpec::slips(double insert, double del, u64 seed) {
  FaultSpec s;
  s.slip_insert_rate = insert;
  s.slip_delete_rate = del;
  s.seed = seed;
  return s;
}

FaultSpec FaultSpec::truncation(double rate, u64 seed) {
  FaultSpec s;
  s.truncate_rate = rate;
  s.seed = seed;
  return s;
}

FaultSpec FaultSpec::aborts(double rate, u64 seed) {
  FaultSpec s;
  s.abort_rate = rate;
  s.seed = seed;
  return s;
}

FaultSpec FaultSpec::pointer_events(double rate, sonet::StsSpec sts, u64 seed) {
  FaultSpec s;
  s.pointer_event_rate = rate;
  s.sts = sts;
  s.seed = seed;
  return s;
}

FaultSpec FaultSpec::drop(double rate, u64 seed) {
  FaultSpec s;
  s.drop_rate = rate;
  s.seed = seed;
  return s;
}

void FaultyLine::flip_bits(Bytes& chunk, bool& touched) {
  const double p = spec_.bit_error_rate;
  const u64 nbits = 8 * static_cast<u64>(chunk.size());
  if (p >= 1.0) {
    for (u8& b : chunk) b = static_cast<u8>(~b);
    stats_.bit_flips += nbits;
    touched = nbits > 0;
    return;
  }
  // Skip-sample the geometric gaps between flips instead of rolling per
  // bit: O(flips), not O(bits), which keeps high-volume BER sweeps cheap.
  const double denom = std::log1p(-p);
  u64 pos = 0;
  while (true) {
    // Uniform in (0, 1] so the log never sees zero.
    const double u = (static_cast<double>(rng_.next() >> 11) + 1.0) * 0x1.0p-53;
    const double skip = std::floor(std::log(u) / denom);
    if (skip >= static_cast<double>(nbits)) break;  // also catches +inf
    pos += static_cast<u64>(skip);
    if (pos >= nbits) break;
    chunk[pos / 8] ^= static_cast<u8>(1u << (pos % 8));
    ++stats_.bit_flips;
    touched = true;
    ++pos;
  }
}

void FaultyLine::apply(Bytes& chunk) {
  const u64 index = stats_.chunks++;
  stats_.octets += chunk.size();
  if (index >= spec_.active_chunks) return;

  bool touched = false;

  // Whole-chunk loss preempts everything else: there is nothing left to
  // corrupt once the datagram is gone.
  if (spec_.drop_rate > 0.0 && !chunk.empty() && rng_.chance(spec_.drop_rate)) {
    chunk.clear();
    ++stats_.drops;
    ++stats_.faulted_chunks;
    return;
  }

  // Structural faults first (they change length), bit noise last so the BER
  // applies to the octets that actually go down the line.
  if (spec_.pointer_event_rate > 0.0 && !chunk.empty() &&
      rng_.chance(spec_.pointer_event_rate)) {
    // Justification slip: position is the octet after H3 when the chunk is a
    // SONET frame of known geometry, random otherwise.
    std::size_t pos;
    if (spec_.sts && chunk.size() >= spec_.sts->frame_bytes()) {
      const std::size_t h3 = 3 * spec_.sts->columns() + 2 * spec_.sts->n;
      pos = std::min(h3 + 1, chunk.size() - 1);
    } else {
      pos = static_cast<std::size_t>(rng_.below(chunk.size()));
    }
    if (rng_.chance(0.5)) {
      chunk.insert(chunk.begin() + static_cast<std::ptrdiff_t>(pos), rng_.byte());
    } else {
      chunk.erase(chunk.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    ++stats_.pointer_events;
    touched = true;
  }

  if (spec_.slip_insert_rate > 0.0 && rng_.chance(spec_.slip_insert_rate)) {
    const std::size_t pos = static_cast<std::size_t>(rng_.below(chunk.size() + 1));
    chunk.insert(chunk.begin() + static_cast<std::ptrdiff_t>(pos), rng_.byte());
    ++stats_.inserts;
    touched = true;
  }

  if (spec_.slip_delete_rate > 0.0 && !chunk.empty() &&
      rng_.chance(spec_.slip_delete_rate)) {
    const std::size_t pos = static_cast<std::size_t>(rng_.below(chunk.size()));
    chunk.erase(chunk.begin() + static_cast<std::ptrdiff_t>(pos));
    ++stats_.deletes;
    touched = true;
  }

  if (spec_.abort_rate > 0.0 && chunk.size() >= 2 && rng_.chance(spec_.abort_rate)) {
    const std::size_t pos = static_cast<std::size_t>(rng_.below(chunk.size() - 1));
    chunk[pos] = hdlc::kEscape;
    chunk[pos + 1] = hdlc::kFlag;
    ++stats_.aborts_injected;
    touched = true;
  }

  if (spec_.truncate_rate > 0.0 && !chunk.empty() && rng_.chance(spec_.truncate_rate)) {
    chunk.resize(static_cast<std::size_t>(rng_.below(chunk.size())));
    ++stats_.truncations;
    touched = true;
  }

  if (spec_.bit_error_rate > 0.0 && !chunk.empty()) flip_bits(chunk, touched);

  if (touched) ++stats_.faulted_chunks;
}

Bytes FaultyLine::transfer(BytesView chunk) {
  Bytes out(chunk.begin(), chunk.end());
  apply(out);
  return out;
}

}  // namespace p5::testing
