#include "transport/conn.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace p5::transport {

// ---------------------------------------------------------------- StreamConn

StreamConn::StreamConn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg, Fd fd,
                       bool connecting)
    : Conn(loop, stats, cfg), fd_(std::move(fd)) {
  P5_EXPECTS(fd_.valid());
  established_ = !connecting;
  last_rx_ms_ = loop_.now_ms();
  loop_.add_fd(fd_.get(), connecting ? kWritable : kReadable,
               [this](u32 events) { handle_events(events); });
  if (established_) {
    // The timer must not outlive the conn: an owner may close()/destroy an
    // accepted conn (e.g. admission reject) before the zero-delay fires.
    open_timer_ = loop_.add_timer(0, [this] {
      open_timer_ = 0;
      if (open() && on_open_) on_open_();
    });
  }
}

bool StreamConn::send_frame(BytesView payload) {
  if (!writable()) return false;
  Bytes chunk;
  chunk.reserve(4 + payload.size());
  put_be32(chunk, static_cast<u32>(payload.size()));
  append(chunk, payload);
  queued_bytes_ += chunk.size();
  queue_.push_back(std::move(chunk));
  stats_.on_send_enqueued(payload.size());
  stats_.note_queue_depth(queued_bytes_);
  flush_write();
  if (open()) update_interest();
  return true;
}

void StreamConn::request_drain() {
  if (!open() || draining_) return;
  draining_ = true;
  flush_write();
  if (open()) update_interest();
}

void StreamConn::handle_events(u32 events) {
  if (!established_) {
    if (events & (kWritable | kIoError)) finish_connect();
    return;
  }
  if (events & kIoError) {
    close_internal(true);
    return;
  }
  if (events & kWritable) {
    flush_write();
    if (!open()) return;
  }
  if (events & kReadable) {
    read_some();
    if (!open()) return;
  }
  update_interest();
}

void StreamConn::finish_connect() {
  const int err = connect_error(fd_.get());
  if (err != 0) {
    close_internal(true);
    return;
  }
  established_ = true;
  last_rx_ms_ = loop_.now_ms();
  update_interest();
  if (on_open_) on_open_();
}

void StreamConn::flush_write() {
  while (!queue_.empty()) {
    const Bytes& head = queue_.front();
    const ssize_t n = ::send(fd_.get(), head.data() + head_off_, head.size() - head_off_,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_internal(true);
      return;
    }
    head_off_ += static_cast<std::size_t>(n);
    queued_bytes_ -= static_cast<std::size_t>(n);
    if (head_off_ < head.size()) return;  // kernel buffer full mid-chunk
    stats_.on_sent(head.size() - 4);
    head_off_ = 0;
    queue_.pop_front();
  }
  if (draining_ && !drained_notified_) {
    drained_notified_ = true;
    (void)::shutdown(fd_.get(), SHUT_WR);
    if (on_drained_) on_drained_();
  }
}

void StreamConn::read_some() {
  // Bounded burst: at most 4 slices per readable event so one fast peer
  // cannot monopolise a run_once slice.
  for (int burst = 0; burst < 4; ++burst) {
    const std::size_t old_size = rx_buf_.size();
    rx_buf_.resize(old_size + cfg_.read_chunk_bytes);
    const ssize_t n = ::recv(fd_.get(), rx_buf_.data() + old_size, cfg_.read_chunk_bytes, 0);
    if (n < 0) {
      rx_buf_.resize(old_size);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_internal(true);
      return;
    }
    if (n == 0) {  // orderly EOF from the peer
      rx_buf_.resize(old_size);
      close_internal(true);
      return;
    }
    rx_buf_.resize(old_size + static_cast<std::size_t>(n));
    last_rx_ms_ = loop_.now_ms();
    if (!parse_frames()) return;  // proto error closed us
    if (static_cast<std::size_t>(n) < cfg_.read_chunk_bytes) return;
  }
}

bool StreamConn::parse_frames() {
  std::size_t off = 0;
  while (rx_buf_.size() - off >= 4) {
    const u32 len = get_be32(rx_buf_, off);
    if (len > cfg_.max_frame_bytes) {
      stats_.proto_error();
      close_internal(true);
      return false;
    }
    if (rx_buf_.size() - off - 4 < len) break;
    stats_.on_received(len);
    if (on_frame_) on_frame_(BytesView(rx_buf_.data() + off + 4, len));
    if (!open()) return false;  // callback closed us
    off += 4 + len;
  }
  if (off > 0) rx_buf_.erase(rx_buf_.begin(), rx_buf_.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

void StreamConn::update_interest() {
  u32 interest = kReadable;
  if (!queue_.empty()) interest |= kWritable;
  loop_.modify_fd(fd_.get(), interest);
}

void StreamConn::close_internal(bool notify) {
  if (closing_ || !fd_.valid()) return;
  closing_ = true;
  if (open_timer_ != 0) {
    loop_.cancel_timer(open_timer_);
    open_timer_ = 0;
  }
  loop_.remove_fd(fd_.get());
  fd_.reset();
  // Exact loss accounting: every enqueued chunk that never made it fully
  // onto the wire (including a partially written head) is charged as lost.
  stats_.add_frames_lost(queue_.size());
  queue_.clear();
  queued_bytes_ = 0;
  head_off_ = 0;
  established_ = false;
  if (notify && on_closed_) on_closed_();
  closing_ = false;
}

// ----------------------------------------------------------------- DgramConn

DgramConn::DgramConn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg, Fd fd,
                     bool learn_peer)
    : Conn(loop, stats, cfg), fd_(std::move(fd)), has_peer_(!learn_peer) {
  P5_EXPECTS(fd_.valid());
  last_rx_ms_ = loop_.now_ms();
  rx_buf_.resize(65536);
  loop_.add_fd(fd_.get(), kReadable, [this](u32 events) {
    if (events & kIoError) {
      close_internal(true);
      return;
    }
    if (events & kReadable) read_some();
  });
  open_timer_ = loop_.add_timer(0, [this] {
    open_timer_ = 0;
    if (writable() && on_open_) on_open_();  // learn_peer side opens on first RX
  });
}

bool DgramConn::send_frame(BytesView payload) {
  if (!writable()) return false;
  stats_.on_send_enqueued(payload.size());
  const ssize_t n = ::send(fd_.get(), payload.data(), payload.size(), MSG_NOSIGNAL);
  if (n == static_cast<ssize_t>(payload.size())) {
    stats_.on_sent(payload.size());
  } else {
    // Kernel refused or truncated — the datagram is gone. The self-sync
    // scrambler on the far side absorbs the hole; we just account for it.
    stats_.add_frames_lost(1);
  }
  return true;
}

void DgramConn::request_drain() {
  // Nothing buffers; a datagram conn is always drained.
  if (open() && on_drained_) on_drained_();
}

void DgramConn::read_some() {
  for (int burst = 0; burst < 16; ++burst) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const ssize_t n = ::recvfrom(fd_.get(), rx_buf_.data(), rx_buf_.size(), 0,
                                 reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN and transient ICMP errors alike: wait for the next event
    }
    last_rx_ms_ = loop_.now_ms();
    if (!has_peer_) {
      // Listener side: lock onto the first talker so sends have a target.
      if (::connect(fd_.get(), reinterpret_cast<sockaddr*>(&peer), peer_len) == 0) {
        has_peer_ = true;
        if (on_open_) on_open_();
        if (!open()) return;
      }
    }
    if (n == 0) continue;  // zero-length datagram carries nothing useful
    stats_.on_received(static_cast<std::size_t>(n));
    if (on_frame_) on_frame_(BytesView(rx_buf_.data(), static_cast<std::size_t>(n)));
    if (!open()) return;
  }
}

void DgramConn::close_internal(bool notify) {
  if (closing_ || !fd_.valid()) return;
  closing_ = true;
  if (open_timer_ != 0) {
    loop_.cancel_timer(open_timer_);
    open_timer_ = 0;
  }
  loop_.remove_fd(fd_.get());
  fd_.reset();
  has_peer_ = false;
  if (notify && on_closed_) on_closed_();
  closing_ = false;
}

}  // namespace p5::transport
