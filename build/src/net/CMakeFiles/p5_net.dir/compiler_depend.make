# Empty compiler generated dependencies file for p5_net.
# This may be replaced when dependencies are built.
