#include "rtl/vcd.hpp"

#include <cstdio>
#include <fstream>

#include "common/check.hpp"

namespace p5::rtl {

VcdWriter::VcdWriter(std::string top_module, double timescale_ns)
    : top_(std::move(top_module)), timescale_ns_(timescale_ns) {}

std::string VcdWriter::make_id(std::size_t index) {
  // Printable identifier characters per the VCD grammar: '!' .. '~'.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index);
  return id;
}

void VcdWriter::add_signal(const std::string& name, unsigned width,
                           std::function<u64()> getter) {
  P5_EXPECTS(!header_done_);
  P5_EXPECTS(width >= 1 && width <= 64);
  Signal s;
  s.name = name;
  s.width = width;
  s.getter = std::move(getter);
  s.id = make_id(signals_.size());
  signals_.push_back(std::move(s));
}

void VcdWriter::sample(u64 cycle) {
  header_done_ = true;
  bool time_written = false;
  for (Signal& s : signals_) {
    const u64 v = s.getter() & (s.width >= 64 ? ~u64{0} : ((u64{1} << s.width) - 1));
    if (s.ever_sampled && v == s.last) continue;
    if (!time_written) {
      body_ << '#' << cycle << '\n';
      time_written = true;
    }
    if (s.width == 1) {
      body_ << (v ? '1' : '0') << s.id << '\n';
    } else {
      body_ << 'b';
      bool leading = true;
      for (int bit = static_cast<int>(s.width) - 1; bit >= 0; --bit) {
        const bool b = (v >> bit) & 1u;
        if (b) leading = false;
        if (!leading || bit == 0) body_ << (b ? '1' : '0');
      }
      body_ << ' ' << s.id << '\n';
    }
    s.last = v;
    s.ever_sampled = true;
  }
}

std::string VcdWriter::str() const {
  std::ostringstream out;
  out << "$date reproducible $end\n";
  out << "$version p5 cycle model $end\n";
  char ts[64];
  std::snprintf(ts, sizeof ts, "$timescale %.0f ps $end\n", timescale_ns_ * 1000.0);
  out << ts;
  out << "$scope module " << top_ << " $end\n";
  for (const Signal& s : signals_) {
    out << "$var wire " << s.width << ' ' << s.id << ' ' << s.name << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";
  out << body_.str();
  return out.str();
}

bool VcdWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

}  // namespace p5::rtl
