#include "p5/framer.hpp"

#include "common/check.hpp"
#include "hdlc/accm.hpp"

namespace p5::core {

using hdlc::kEscape;
using hdlc::kFlag;

// ---------------- FlagInserter ----------------

FlagInserter::FlagInserter(std::string name, unsigned lanes, rtl::Fifo<rtl::Word>& in,
                           rtl::Fifo<rtl::Word>& out)
    : rtl::Module(std::move(name)), lanes_(lanes), in_(in), out_(out) {}

void FlagInserter::eval() {
  staging_next_ = staging_;
  open_frame_next_ = open_frame_;

  // ---- emit one word per cycle: data, or flag fill on an idle line ----
  if (out_.can_push()) {
    const bool frame_data_ready = staging_.size() >= lanes_ || (!open_frame_ && !staging_.empty());
    if (frame_data_ready) {
      rtl::Word w;
      const std::size_t n = std::min<std::size_t>(lanes_, staging_next_.size());
      for (std::size_t i = 0; i < n; ++i) {
        w.push(staging_next_.front());
        staging_next_.pop_front();
      }
      // Pad a frame tail with inter-frame fill (only legal between frames).
      while (w.count() < lanes_) {
        w.push(kFlag);
        ++fill_octets_;
      }
      out_.push(w);
    } else if (staging_.empty() && !open_frame_) {
      // Idle line: continuous flag fill (RFC 1619 octet-synchronous stream).
      rtl::Word w;
      for (unsigned i = 0; i < lanes_; ++i) w.push(kFlag);
      fill_octets_ += lanes_;
      out_.push(w);
    }
    // open frame with a short queue: hold the line for one cycle — upstream
    // sustains lanes octets/cycle mid-frame, so this only happens at start.
  }

  // ---- absorb one stuffed word ----
  if (staging_next_.size() <= 4u * lanes_ && in_.can_pop()) {
    const rtl::Word w = in_.pop();
    if (w.sof) {
      staging_next_.push_back(kFlag);  // opening flag
      open_frame_next_ = true;
    }
    for (std::size_t i = 0; i < w.count(); ++i) staging_next_.push_back(w.lane(i));
    if (w.eof) {
      staging_next_.push_back(kFlag);  // closing flag
      open_frame_next_ = false;
      ++frames_;
    }
  }
}

void FlagInserter::commit() {
  staging_ = std::move(staging_next_);
  open_frame_ = open_frame_next_;
}

// ---------------- FlagDelineator ----------------

FlagDelineator::FlagDelineator(std::string name, unsigned lanes, rtl::Fifo<rtl::Word>& in,
                               rtl::Fifo<rtl::Word>& out, std::size_t min_frame)
    : rtl::Module(std::move(name)), lanes_(lanes), min_frame_(min_frame), in_(in), out_(out) {}

// Streaming design: frame octets are forwarded as they arrive; abort and
// runt conditions are only knowable at the closing flag, so they are
// reported on the EOF word's abort bit and the CRC checker junks the frame.
// Octets already emitted downstream are harmless once the EOF is aborted.

void FlagDelineator::eval() {
  queue_next_ = queue_;
  in_frame_next_ = in_frame_;
  frame_len_next_ = frame_len_;
  last_octet_next_ = last_octet_;

  // ---- emit up to `lanes` octets, never letting frames share a word ----
  // The open frame's most recent octet is held back: only the next input
  // octet reveals whether it is the frame's last (a flag follows) and must
  // carry the EOF/abort markers.
  const bool tail_open = in_frame_ && !queue_.empty() && !queue_.back().eof;
  const std::size_t emittable = queue_.size() - (tail_open ? 1 : 0);
  if (out_.can_push() && emittable > 0) {
    // Does an EOF fall within the next word? (tails flush immediately)
    bool eof_within = false;
    for (std::size_t i = 0; i < std::min<std::size_t>(lanes_, emittable); ++i)
      if (queue_[i].eof) eof_within = true;

    if (emittable >= lanes_ || eof_within) {
      rtl::Word w;
      std::size_t taken = 0;
      while (w.count() < lanes_ && taken < emittable) {
        const Entry e = queue_next_.front();
        queue_next_.pop_front();
        ++taken;
        if (e.sof && w.count() == 0) w.sof = true;
        if (e.sof && w.count() > 0) {
          // Next frame begins: put it back, close this word.
          queue_next_.push_front(e);
          break;
        }
        w.push(e.octet);
        if (e.eof) {
          w.eof = true;
          w.abort = e.abort;
          break;
        }
      }
      if (w.count() > 0) out_.push(w);
    }
  }

  // ---- consume one raw word from the line ----
  if (in_.can_pop() && queue_next_.size() <= 8u * lanes_) {
    const rtl::Word raw = in_.pop();
    for (std::size_t i = 0; i < raw.count(); ++i) {
      const u8 octet = raw.lane(i);
      if (octet == kFlag) {
        // Close the current frame (if it had content).
        if (in_frame_next_ && frame_len_next_ > 0) {
          const bool abort = last_octet_next_ == kEscape;
          const bool runt = frame_len_next_ < min_frame_;
          if (abort)
            ++counters_.aborts;
          else if (runt)
            ++counters_.runts;
          else
            ++counters_.frames;
          P5_ASSERT(!queue_next_.empty());
          queue_next_.back().eof = true;
          queue_next_.back().abort = abort || runt;
        }
        in_frame_next_ = true;  // this flag opens the next frame too
        frame_len_next_ = 0;
        continue;
      }
      if (!in_frame_next_) continue;  // hunting for the first flag
      Entry e;
      e.octet = octet;
      e.sof = frame_len_next_ == 0;
      queue_next_.push_back(e);
      ++frame_len_next_;
      last_octet_next_ = octet;
    }
  }
}

void FlagDelineator::commit() {
  queue_ = std::move(queue_next_);
  in_frame_ = in_frame_next_;
  frame_len_ = frame_len_next_;
  last_octet_ = last_octet_next_;
}

}  // namespace p5::core
