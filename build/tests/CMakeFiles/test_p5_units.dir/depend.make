# Empty dependencies file for test_p5_units.
# This may be replaced when dependencies are built.
