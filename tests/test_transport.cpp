// transport:: — the epoll/poll socket layer that carries P5 SONET streams
// between real processes.
//
//  * EventLoop: deterministic manual-time timers, poll-backend parity,
//    thread-safe post()/stop() (run under -fsanitize=thread).
//  * StreamConn: 10k mixed-size frames echoed over loopback TCP, byte-exact
//    and in order; write-queue watermark refuses frames instead of
//    ballooning.
//  * Tunnel: a socketed P5SonetEndpoint pair delivers byte-for-byte what a
//    directly wired P5SonetLink delivers, with zero CRC/BIP errors;
//    kill-and-reconnect runs the backoff ladder and keeps the loss
//    invariant frames_in == frames_out + frames_lost exact; UDP datagram
//    loss (testing::FaultSpec::drop as the rx tap) costs resyncs, never
//    corrupt deliveries; a linecard::Channel's fabric edge bridges across
//    the socket; the backoff budget fails closed.
//
// The tunnel tests run at both device tiers: the TunnelHarness default is a
// P5_DEVICE_TIER selection point (the CI matrix forces the whole suite
// through each tier), and the FastTier* tests pin DeviceTier::kFast so the
// batch datapath is socket-tested even in a default run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "linecard/channel.hpp"
#include "linecard/telemetry.hpp"
#include "p5/sonet_link.hpp"
#include "testing/fault.hpp"
#include "transport/conn.hpp"
#include "transport/event_loop.hpp"
#include "transport/tunnel.hpp"

namespace p5::transport {
namespace {

/// Mixed traffic with flags/escapes sprinkled in, index stamped up front so
/// any delivery identifies the datagram it came from.
Bytes stamped_payload(Xoshiro256& rng, u32 index, std::size_t len) {
  Bytes p;
  p.reserve(len + 4);
  put_be32(p, index);
  for (std::size_t i = 0; i < len; ++i) {
    if (rng.chance(0.08))
      p.push_back(rng.chance(0.5) ? u8{0x7E} : u8{0x7D});
    else
      p.push_back(rng.byte());
  }
  return p;
}

// ---------------------------------------------------------------- EventLoop

TEST(TransportEventLoop, ManualTimeFiresTimersOnlyWhenAdvanced) {
  EventLoop loop;
  loop.enable_manual_time();
  int fired_a = 0, fired_b = 0;
  loop.add_timer(10, [&] { ++fired_a; });
  const auto id_b = loop.add_timer(20, [&] { ++fired_b; });
  loop.run_once();
  EXPECT_EQ(fired_a, 0);
  loop.advance_time(10);
  loop.run_once();
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 0);
  loop.cancel_timer(id_b);
  loop.advance_time(100);
  loop.run_once();
  EXPECT_EQ(fired_b, 0);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(TransportEventLoop, PollBackendDispatchesReadiness) {
  for (auto backend : {EventLoop::Backend::kEpoll, EventLoop::Backend::kPoll}) {
    EventLoop loop(backend);
    EXPECT_EQ(loop.using_epoll(), backend == EventLoop::Backend::kEpoll);
    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);
    Fd rd(pipe_fds[0]), wr(pipe_fds[1]);
    ASSERT_TRUE(set_nonblocking(rd.get()));
    int reads = 0;
    loop.add_fd(rd.get(), kReadable, [&](u32 events) {
      EXPECT_TRUE(events & kReadable);
      char buf[8];
      while (::read(rd.get(), buf, sizeof(buf)) > 0) ++reads;
    });
    loop.run_once();
    EXPECT_EQ(reads, 0);
    ASSERT_EQ(::write(wr.get(), "x", 1), 1);
    loop.run_once(100);
    EXPECT_EQ(reads, 1);
    loop.remove_fd(rd.get());
  }
}

TEST(TransportEventLoop, PostAndStopAreThreadSafe) {
  EventLoop loop;
  std::atomic<int> ran{0};
  std::thread runner([&] { loop.run(); });
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(loop.post([&] { ran.fetch_add(1, std::memory_order_relaxed); }));
  }
  while (ran.load(std::memory_order_relaxed) < 100) std::this_thread::yield();
  loop.stop();
  runner.join();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_TRUE(loop.stopped());
}

TEST(TransportEventLoop, PostAfterStopIsObservablyDropped) {
  EventLoop loop;
  loop.stop();
  bool ran = false;
  EXPECT_FALSE(loop.post([&] { ran = true; }));  // rejected, nothing enqueued
  loop.run_once();  // only the self-pipe wake drain may dispatch here
  EXPECT_EQ(loop.drain_posted(), 0u);
  EXPECT_FALSE(ran);
}

// The shutdown-ordering contract (event_loop.hpp): a post() racing stop()
// either runs before run() returns or returns false. Producer threads hammer
// post() while the main thread stops the loop mid-stream; every accepted
// task must have executed once the runner joins — none stranded, no
// deadlock, no double-run.
TEST(TransportEventLoop, PostRacingStopRunsOrIsDropped) {
  for (int round = 0; round < 8; ++round) {
    EventLoop loop;
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> go{false};
    std::thread runner([&] { loop.run(); });
    constexpr int kProducers = 4;
    constexpr int kPostsEach = 200;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < kPostsEach; ++i) {
          if (loop.post([&] { ran.fetch_add(1, std::memory_order_relaxed); })) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    while (accepted.load(std::memory_order_relaxed) < kProducers * kPostsEach / 4) {
      std::this_thread::yield();
    }
    loop.stop();  // races the still-running producers
    for (auto& t : producers) t.join();
    runner.join();
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
    EXPECT_FALSE(loop.post([] {}));  // stays rejected after shutdown
  }
}

TEST(TransportEventLoop, DrainPostedCoversCustomDrivers) {
  // A custom driver (a server shard) loops run_once() on its own stop flag;
  // drain_posted() after the flag trips gives it the same no-stranded-task
  // guarantee run() has. Tasks posted from within a drained task also run.
  EventLoop loop;
  int ran = 0;
  ASSERT_TRUE(loop.post([&] {
    ++ran;
    ASSERT_TRUE(loop.post([&] { ++ran; }));  // nested re-post, pre-stop
  }));
  EXPECT_EQ(loop.drain_posted(), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.drain_posted(), 0u);
}

// --------------------------------------------------------------- StreamConn

struct LoopbackPair {
  EventLoop& loop;
  Fd listen_fd;
  std::unique_ptr<StreamConn> client, server;

  LoopbackPair(EventLoop& loop_ref, TransportTelemetry& ctel, TransportTelemetry& stel,
               ConnConfig ccfg = {}, ConnConfig scfg = {})
      : loop(loop_ref) {
    listen_fd = tcp_listen(SocketAddr{"127.0.0.1", 0});
    EXPECT_TRUE(listen_fd.valid());
    loop.add_fd(listen_fd.get(), kReadable, [this, &stel, scfg](u32) {
      Fd c = tcp_accept(listen_fd.get());
      if (!c.valid()) return;
      server = std::make_unique<StreamConn>(loop, stel, scfg, std::move(c), false);
    });
    bool in_progress = false;
    Fd c = tcp_connect(SocketAddr{"127.0.0.1", local_port(listen_fd.get())}, in_progress);
    EXPECT_TRUE(c.valid());
    client = std::make_unique<StreamConn>(loop, ctel, ccfg, std::move(c), in_progress);
    for (int guard = 0; guard < 1000 && (!server || !client->open()); ++guard) loop.run_once(10);
    EXPECT_TRUE(server && client->open() && server->open());
  }
  ~LoopbackPair() {
    if (listen_fd.valid()) loop.remove_fd(listen_fd.get());
  }
};

TEST(TransportStream, Echo10kMixedFramesByteExact) {
  EventLoop loop;
  TransportTelemetry ctel, stel;
  // The echo side gets a deep watermark: its outflow is gated by the
  // client's reads, not by its own flow control.
  ConnConfig scfg;
  scfg.send_watermark_bytes = 64 * 1024 * 1024;
  LoopbackPair pair(loop, ctel, stel, {}, scfg);
  // Server echoes every frame straight back.
  pair.server->set_on_frame([&](BytesView v) { ASSERT_TRUE(pair.server->send_frame(v)); });

  constexpr std::size_t kFrames = 10000;
  Xoshiro256 rng(7);
  std::vector<Bytes> sent;
  sent.reserve(kFrames);
  for (u32 i = 0; i < kFrames; ++i)
    sent.push_back(stamped_payload(rng, i, rng.range(1, 1800)));

  std::vector<Bytes> echoed;
  echoed.reserve(kFrames);
  pair.client->set_on_frame([&](BytesView v) { echoed.emplace_back(v.begin(), v.end()); });

  std::size_t next = 0;
  for (int guard = 0; guard < 200000 && echoed.size() < kFrames; ++guard) {
    while (next < kFrames && pair.client->send_frame(sent[next])) ++next;
    loop.run_once(10);
  }
  ASSERT_EQ(echoed.size(), kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) ASSERT_EQ(echoed[i], sent[i]) << "frame " << i;

  const TransportSnapshot c = ctel.snapshot();
  EXPECT_EQ(c.frames_in, kFrames);
  EXPECT_EQ(c.frames_out, kFrames);
  EXPECT_EQ(c.frames_lost, 0u);
  EXPECT_EQ(c.frames_rcvd, kFrames);
  EXPECT_EQ(c.proto_errors, 0u);
}

TEST(TransportStream, WatermarkRefusesFramesAndLossIsExactOnClose) {
  EventLoop loop;
  TransportTelemetry tel;
  // Peer never accepts: the kernel completes the handshake into the listen
  // backlog, then its buffers fill and the write queue hits the watermark.
  Fd listen_fd = tcp_listen(SocketAddr{"127.0.0.1", 0});
  ASSERT_TRUE(listen_fd.valid());
  bool in_progress = false;
  Fd c = tcp_connect(SocketAddr{"127.0.0.1", local_port(listen_fd.get())}, in_progress);
  ASSERT_TRUE(c.valid());
  ConnConfig cfg;
  cfg.send_watermark_bytes = 16 * 1024;
  StreamConn conn(loop, tel, cfg, std::move(c), in_progress);
  for (int guard = 0; guard < 1000 && !conn.open(); ++guard) loop.run_once(10);
  ASSERT_TRUE(conn.open());

  const Bytes chunk(2048, 0xAB);
  std::size_t accepted = 0;
  for (int guard = 0; guard < 100000; ++guard) {
    if (!conn.send_frame(chunk)) break;
    ++accepted;
  }
  EXPECT_FALSE(conn.writable());
  EXPECT_GT(conn.queued_frames(), 0u);
  conn.close();
  const TransportSnapshot s = tel.snapshot();
  EXPECT_EQ(s.frames_in, accepted);
  EXPECT_EQ(s.frames_in, s.frames_out + s.frames_lost);  // queue term is zero
  EXPECT_GT(s.frames_lost, 0u);
  EXPECT_GT(s.send_queue_hwm, 0u);
}

// ------------------------------------------------------------------- Tunnel

struct TunnelHarness {
  EventLoop loop;
  /// Tier-generic endpoints: the harness default is a selection point for
  /// the P5_DEVICE_TIER override (the CI matrix forces both tiers through
  /// this whole suite); tests that pin a tier pass it explicitly.
  std::unique_ptr<core::SonetEndpoint> ep_a, ep_b;
  std::unique_ptr<Tunnel> tun_a, tun_b;  // a listens, b connects

  explicit TunnelHarness(
      bool udp, TunnelConfig extra = {},
      core::DeviceTier tier = core::resolve_device_tier(core::DeviceTier::kCycle))
      : ep_a(core::make_sonet_endpoint(tier, {}, sonet::kSts3c)),
        ep_b(core::make_sonet_endpoint(tier, {}, sonet::kSts3c)) {
    TunnelConfig ca = extra;
    ca.listen = true;
    ca.udp = udp;
    ca.port = 0;
    tun_a = std::make_unique<Tunnel>(loop, TunnelBinding::endpoint(*ep_a), ca);
    tun_a->start();
    TunnelConfig cb = extra;
    cb.listen = false;
    cb.udp = udp;
    cb.port = tun_a->bound_port();
    cb.seed = extra.seed + 1;
    tun_b = std::make_unique<Tunnel>(loop, TunnelBinding::endpoint(*ep_b), cb);
    tun_b->start();
  }

  void pump(int timeout_ms = 1) {
    tun_a->pump();
    tun_b->pump();
    loop.run_once(timeout_ms);
  }
};

/// Reference: the same payloads through a directly wired in-memory link.
std::vector<Bytes> direct_deliveries(const std::vector<Bytes>& payloads) {
  core::P5SonetLink link({}, sonet::kSts3c, {});
  for (const Bytes& p : payloads) EXPECT_TRUE(link.a().submit_datagram(0x0021, p));
  std::vector<Bytes> out;
  for (int guard = 0; guard < 10000 && out.size() < payloads.size(); ++guard) {
    link.exchange_frames(1);
    while (auto d = link.b().reap_datagram()) out.push_back(std::move(d->payload));
  }
  return out;
}

/// TCP echo at a given device tier: socketed deliveries must match a
/// directly wired cycle-level P5SonetLink byte for byte (for the fast tier
/// this is also a cross-tier equivalence check over a real socket).
void tcp_echo_byte_exact(core::DeviceTier tier) {
  constexpr std::size_t kDatagrams = 40;
  Xoshiro256 rng(11);
  std::vector<Bytes> payloads;
  for (u32 i = 0; i < kDatagrams; ++i)
    payloads.push_back(stamped_payload(rng, i, rng.range(40, 400)));

  TunnelHarness h(/*udp=*/false, {}, tier);
  for (const Bytes& p : payloads) ASSERT_TRUE(h.ep_b->submit_datagram(0x0021, p));

  std::vector<Bytes> delivered;
  for (int guard = 0; guard < 20000 && delivered.size() < kDatagrams; ++guard) {
    h.pump();
    while (auto d = h.ep_a->reap_datagram()) delivered.push_back(std::move(d->payload));
  }
  ASSERT_EQ(delivered.size(), kDatagrams);
  EXPECT_EQ(delivered, direct_deliveries(payloads));

  // Zero CRC/BIP errors across the socketed path.
  EXPECT_EQ(h.ep_a->rx_counters().frames_bad, 0u);
  EXPECT_EQ(h.ep_a->rx_stats().b3_errors, 0u);
  EXPECT_EQ(h.ep_a->rx_stats().resyncs, 0u);
  EXPECT_TRUE(h.ep_a->rx_in_sync());

  // Chunk accounting is exact on both sides of the wire.
  const TransportSnapshot sa = h.tun_a->stats(), sb = h.tun_b->stats();
  EXPECT_EQ(sb.frames_lost, 0u);
  EXPECT_EQ(sb.frames_in, sb.frames_out);
  EXPECT_EQ(sa.frames_rcvd, sb.frames_out);
  EXPECT_EQ(sa.rx_drops, 0u);
  EXPECT_EQ(sb.connects, 1u);
  EXPECT_EQ(sb.reconnects, 0u);
}

TEST(TransportTunnel, TcpDeliveryByteExactVsDirectWiringZeroCrcErrors) {
  tcp_echo_byte_exact(core::resolve_device_tier(core::DeviceTier::kCycle));
}

TEST(TransportTunnel, FastTierTcpDeliveryByteExactVsCycleDirectWiring) {
  tcp_echo_byte_exact(core::DeviceTier::kFast);
}

TEST(TransportTunnel, KillAndReconnectRunsBackoffAndKeepsLossInvariant) {
  TunnelConfig extra;
  extra.backoff_initial_ms = 1;
  extra.backoff_max_ms = 8;
  extra.seed = 21;
  TunnelHarness h(/*udp=*/false, extra);

  Xoshiro256 rng(13);
  std::vector<Bytes> payloads;
  for (u32 i = 0; i < 30; ++i) payloads.push_back(stamped_payload(rng, i, rng.range(40, 300)));

  std::map<u32, Bytes> delivered;
  std::size_t submitted = 0;
  bool killed = false;
  int settle = 0;
  for (int guard = 0; guard < 20000; ++guard) {
    if (h.tun_b->established() && submitted < payloads.size()) {
      if (h.ep_b->submit_datagram(0x0021, payloads[submitted])) ++submitted;
    }
    h.pump();
    // Sever mid-stream once traffic is moving, then let the ladder recover.
    if (!killed && h.tun_a->stats().frames_rcvd > 2) {
      h.tun_b->kill_connection();
      killed = true;
    }
    while (auto d = h.ep_a->reap_datagram()) {
      ASSERT_GE(d->payload.size(), 4u);
      delivered[get_be32(d->payload, 0)] = d->payload;
    }
    // Everything submitted, reconnected, TX quiesced: give the tail a few
    // hundred slices to flush, then stop.
    if (submitted == payloads.size() && killed && h.tun_b->stats().reconnects >= 1 &&
        h.tun_b->established() && !h.ep_b->tx_pending()) {
      if (++settle > 300) break;
    } else {
      settle = 0;
    }
  }
  ASSERT_TRUE(killed);
  EXPECT_GE(delivered.size(), 10u);  // the outage eats some, never most

  const TransportSnapshot sb = h.tun_b->stats();
  EXPECT_EQ(sb.connects, 1u);
  EXPECT_GE(sb.reconnects, 1u);
  EXPECT_GE(sb.backoff_waits, 1u);
  EXPECT_GE(sb.disconnects, 1u);
  // Exact chunk accounting across the outage: at quiescence every accepted
  // chunk is either out or counted lost.
  EXPECT_EQ(sb.frames_in, sb.frames_out + sb.frames_lost);
  // Whatever made it through is byte-exact (CRC junked anything torn).
  for (const auto& [idx, p] : delivered) {
    ASSERT_LT(idx, payloads.size());
    EXPECT_EQ(p, payloads[idx]);
  }
  EXPECT_TRUE(h.tun_b->established());
}

/// UDP with a 40% chunk-drop tap at a given device tier: losses cost
/// resyncs and junked frames, never corrupt deliveries.
void udp_tolerates_datagram_loss(core::DeviceTier tier) {
  TunnelHarness h(/*udp=*/true, {}, tier);
  // 40% chunk loss over ~20 data-carrying chunks: some datagrams certainly
  // die, some certainly survive (deterministic tap stream, seed 31).
  testing::FaultyLine drops(testing::FaultSpec::drop(0.4, 31));
  h.tun_a->set_rx_tap(std::ref(drops));  // losses on the B->A direction

  Xoshiro256 rng(17);
  std::vector<Bytes> payloads;
  for (u32 i = 0; i < 60; ++i)
    payloads.push_back(stamped_payload(rng, i, rng.range(400, 1200)));

  std::map<u32, Bytes> delivered;
  std::size_t submitted = 0;
  int settle = 0;
  for (int guard = 0; guard < 20000; ++guard) {
    if (submitted < payloads.size() &&
        h.ep_b->submit_datagram(0x0021, payloads[submitted]))
      ++submitted;
    h.pump();
    while (auto d = h.ep_a->reap_datagram()) {
      ASSERT_GE(d->payload.size(), 4u);
      delivered[get_be32(d->payload, 0)] = d->payload;
    }
    if (submitted == payloads.size() && !h.ep_b->tx_pending()) {
      if (++settle > 300) break;
    } else {
      settle = 0;
    }
  }

  // The tap really dropped chunks, some datagrams still got through, and
  // every one that did is byte-exact — the self-sync scrambler plus HDLC
  // CRC turn datagram loss into clean gaps, never corrupt deliveries.
  EXPECT_GT(drops.stats().drops, 0u);
  EXPECT_GT(delivered.size(), 0u);
  EXPECT_LT(delivered.size(), payloads.size());
  for (const auto& [idx, p] : delivered) {
    ASSERT_LT(idx, payloads.size());
    EXPECT_EQ(p, payloads[idx]);
  }
  // A dropped chunk tears the HDLC frame spanning it; the FCS catches every
  // tear and junks it (frames_bad) instead of delivering garbage.
  EXPECT_GT(h.ep_a->rx_counters().frames_bad, 0u);

  // Datagram accounting: everything B sent was either received by A's
  // tunnel or vanished in the (loss-free loopback) kernel path — and the
  // tap's drops happened after frames_rcvd counted them.
  const TransportSnapshot sa = h.tun_a->stats(), sb = h.tun_b->stats();
  EXPECT_EQ(sb.frames_in, sb.frames_out + sb.frames_lost);
  EXPECT_LE(sa.frames_rcvd, sb.frames_out);
}

TEST(TransportTunnel, UdpToleratesInjectedDatagramLoss) {
  udp_tolerates_datagram_loss(core::resolve_device_tier(core::DeviceTier::kCycle));
}

TEST(TransportTunnel, FastTierUdpToleratesFortyPercentDatagramLoss) {
  udp_tolerates_datagram_loss(core::DeviceTier::kFast);
}

TEST(TransportTunnel, ChannelBindingBridgesFabricAcrossTheSocket) {
  EventLoop loop;
  linecard::ChannelTelemetry tel_a, tel_b;
  linecard::ChannelConfig cc;
  linecard::Channel ch_a(0, cc, tel_a), ch_b(1, cc, tel_b);

  TunnelConfig ca;
  ca.listen = true;
  ca.port = 0;
  Tunnel tun_a(loop, TunnelBinding::channel(ch_a), ca);
  tun_a.start();

  // B side: deliveries out of ch_b's link are consumed by the test itself,
  // so the tunnel only feeds the fabric ring (one-way bridge).
  TunnelBinding b_bind;
  b_bind.push = [&](BytesView v) -> bool {
    if (v.size() < 4) return false;
    linecard::FrameDesc d;
    d.protocol = get_be16(v, 0);
    d.fabric_dest = v[2];
    d.source_channel = v[3];
    d.payload.assign(v.begin() + 4, v.end());
    return ch_b.ingress_offer(std::move(d));
  };
  b_bind.step = [&] { (void)ch_b.step(); };
  TunnelConfig cb;
  cb.port = tun_a.bound_port();
  Tunnel tun_b(loop, std::move(b_bind), cb);
  tun_b.start();

  Xoshiro256 rng(19);
  std::vector<Bytes> payloads;
  for (u32 i = 0; i < 12; ++i) payloads.push_back(stamped_payload(rng, i, rng.range(40, 200)));
  for (const Bytes& p : payloads) {
    linecard::FrameDesc d;
    d.fabric_dest = 0x41;
    d.payload = p;
    ASSERT_TRUE(ch_a.source_ring().try_push(std::move(d)));
  }

  std::vector<linecard::FrameDesc> arrived;
  for (int guard = 0; guard < 60000 && arrived.size() < payloads.size(); ++guard) {
    tun_a.pump();
    tun_b.pump();
    loop.run_once(1);
    while (auto d = ch_b.egress_ring().try_pop()) arrived.push_back(std::move(*d));
  }
  ASSERT_EQ(arrived.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(arrived[i].payload, payloads[i]);
    EXPECT_EQ(arrived[i].source_channel, 1);  // re-stamped by ch_b's ingress
  }
  EXPECT_EQ(tun_a.stats().frames_out, payloads.size());
  EXPECT_EQ(tun_b.stats().rx_drops, 0u);
}

TEST(TransportTunnel, DrainFlushesThenCloses) {
  TunnelHarness h(/*udp=*/false);
  for (int guard = 0; guard < 2000 && !h.tun_b->established(); ++guard) h.pump();
  ASSERT_TRUE(h.tun_b->established());
  h.tun_b->request_drain();
  for (int guard = 0; guard < 2000 && !h.tun_b->finished(); ++guard) h.pump();
  EXPECT_EQ(h.tun_b->state(), TunnelState::kClosed);
  const TransportSnapshot sb = h.tun_b->stats();
  EXPECT_EQ(sb.frames_in, sb.frames_out + sb.frames_lost);
  EXPECT_EQ(sb.frames_lost, 0u);
}

TEST(TransportTunnel, BackoffBudgetFailsClosed) {
  // Find a port with nobody behind it.
  u16 dead_port;
  {
    Fd probe = tcp_listen(SocketAddr{"127.0.0.1", 0});
    ASSERT_TRUE(probe.valid());
    dead_port = local_port(probe.get());
  }
  EventLoop loop;
  core::P5SonetEndpoint ep({}, sonet::kSts3c);
  TunnelConfig cfg;
  cfg.port = dead_port;
  cfg.backoff_initial_ms = 2;
  cfg.backoff_max_ms = 8;
  cfg.backoff_budget_ms = 30;
  Tunnel tun(loop, TunnelBinding::endpoint(ep), cfg);
  tun.start();
  for (int guard = 0; guard < 5000 && !tun.finished(); ++guard) {
    tun.pump();
    loop.run_once(1);
  }
  EXPECT_EQ(tun.state(), TunnelState::kFailed);
  const TransportSnapshot s = tun.stats();
  EXPECT_GE(s.backoff_waits, 1u);
  EXPECT_EQ(s.connects, 0u);
}

TEST(TransportTunnel, BackpressureStallsAreCounted) {
  // A listener that never accepts: the client's write queue fills at the
  // kernel's pace and the pump defers, counting stalls while chunks stay in
  // the binding instead of ballooning the socket queue.
  EventLoop loop;
  Fd blackhole = tcp_listen(SocketAddr{"127.0.0.1", 0});
  ASSERT_TRUE(blackhole.valid());

  TunnelBinding firehose;
  firehose.pull = [] { return Bytes(2048, 0x5A); };
  firehose.ready = [] { return true; };
  firehose.push = [](BytesView) { return true; };

  TunnelConfig cfg;
  cfg.port = local_port(blackhole.get());
  cfg.conn.send_watermark_bytes = 16 * 1024;
  Tunnel tun(loop, std::move(firehose), cfg);
  tun.start();
  for (int guard = 0; guard < 20000 && tun.stats().backpressure_stalls == 0; ++guard) {
    tun.pump();
    loop.run_once(0);
  }
  const TransportSnapshot mid = tun.stats();
  EXPECT_GT(mid.backpressure_stalls, 0u);
  EXPECT_GT(mid.send_queue_hwm, 0u);

  // Hard kill: the queued remainder is charged as lost, exactly.
  tun.kill_connection();
  loop.run_once(1);
  const TransportSnapshot s = tun.stats();
  EXPECT_EQ(s.frames_in, s.frames_out + s.frames_lost);
  EXPECT_GT(s.frames_lost, 0u);
}

}  // namespace
}  // namespace p5::transport
