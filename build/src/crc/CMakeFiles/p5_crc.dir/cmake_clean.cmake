file(REMOVE_RECURSE
  "CMakeFiles/p5_crc.dir/crc_table.cpp.o"
  "CMakeFiles/p5_crc.dir/crc_table.cpp.o.d"
  "CMakeFiles/p5_crc.dir/gf2.cpp.o"
  "CMakeFiles/p5_crc.dir/gf2.cpp.o.d"
  "CMakeFiles/p5_crc.dir/parallel_crc.cpp.o"
  "CMakeFiles/p5_crc.dir/parallel_crc.cpp.o.d"
  "libp5_crc.a"
  "libp5_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
