#include "crc/gf2.hpp"

namespace p5::crc {

std::size_t Gf2Matrix::rank() const {
  std::vector<Gf2Vec> rows = data_;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows.size(); ++col) {
    // find pivot
    std::size_t pivot = rank;
    while (pivot < rows.size() && !rows[pivot].get(col)) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[rank], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r)
      if (r != rank && rows[r].get(col)) rows[r] ^= rows[rank];
    ++rank;
  }
  return rank;
}

}  // namespace p5::crc
