#include "ppp/reliable.hpp"

#include "common/check.hpp"

namespace p5::ppp {

namespace {
constexpr u8 kMod = 8;
/// Is `x` within the half-open window [lo, hi) modulo 8?
constexpr bool in_window(u8 x, u8 lo, u8 hi) {
  return ((x - lo) & 7) < ((hi - lo) & 7);
}
}  // namespace

ReliableLink::ReliableLink(const ReliableConfig& cfg, std::function<void(u8, BytesView)> frame_tx,
                           std::function<void(BytesView)> deliver)
    : cfg_(cfg), frame_tx_(std::move(frame_tx)), deliver_(std::move(deliver)) {
  P5_EXPECTS(cfg.window >= 1 && cfg.window <= 7);
}

void ReliableLink::send(Bytes payload) {
  pending_.push_back(std::move(payload));
  pump();
}

void ReliableLink::pump() {
  while (!pending_.empty() && !failed_ &&
         ((vs_ - va_) & 7) < static_cast<u8>(cfg_.window)) {
    Bytes payload = std::move(pending_.front());
    pending_.pop_front();
    transmit_i(vs_, payload);
    unacked_.push_back(Outstanding{vs_, std::move(payload)});
    vs_ = static_cast<u8>((vs_ + 1) % kMod);
    ++stats_.data_sent;
    if (t1_remaining_ == 0) arm_t1();
  }
}

void ReliableLink::transmit_i(u8 ns, const Bytes& payload) {
  frame_tx_(make_i_frame(ns, vr_), payload);
}

void ReliableLink::process_ack(u8 nr) {
  // N(R) acknowledges every I-frame with N(S) < N(R) (mod 8, within the
  // outstanding window).
  bool acked_any = false;
  while (!unacked_.empty() && in_window(unacked_.front().ns, va_, nr)) {
    unacked_.pop_front();
    acked_any = true;
  }
  if (in_window(nr, va_, static_cast<u8>((vs_ + 1) % kMod)) || nr == vs_) va_ = nr;
  if (acked_any) {
    retries_ = 0;
    if (unacked_.empty())
      t1_remaining_ = 0;  // everything acknowledged: stop T1
    else
      arm_t1();  // restart for the next outstanding frame
  }
  pump();
}

void ReliableLink::on_frame(u8 control, BytesView payload) {
  if (failed_) return;

  if (is_i_frame(control)) {
    const u8 ns = i_frame_ns(control);
    process_ack(frame_nr(control));
    if (ns == vr_) {
      vr_ = static_cast<u8>((vr_ + 1) % kMod);
      rej_outstanding_ = false;
      ++stats_.delivered;
      deliver_(payload);
      // Acknowledge (a real stack would piggyback on reverse I-frames; an
      // explicit RR keeps the machine simple and the link chatty but safe).
      frame_tx_(make_rr(vr_), {});
      ++stats_.acks_sent;
    } else {
      // Out of sequence: go-back-N. One REJ per gap (RFC 1663 / LAPB rule).
      ++stats_.duplicates;
      if (!rej_outstanding_) {
        frame_tx_(make_rej(vr_), {});
        ++stats_.rejs_sent;
        rej_outstanding_ = true;
      }
    }
    return;
  }

  if (is_rr(control)) {
    process_ack(frame_nr(control));
    return;
  }

  if (is_rej(control)) {
    const u8 nr = frame_nr(control);
    process_ack(nr);
    // Retransmit everything still outstanding, starting at N(R).
    for (const Outstanding& o : unacked_) {
      transmit_i(o.ns, o.payload);
      ++stats_.retransmissions;
    }
    if (!unacked_.empty()) arm_t1();
    return;
  }
  // Unknown supervisory frames are ignored (RNR/SREJ not implemented).
}

void ReliableLink::tick() {
  if (failed_ || t1_remaining_ == 0) return;
  if (--t1_remaining_ > 0) return;

  // T1 expired: retransmit all outstanding I-frames (go-back-N).
  if (++retries_ > cfg_.max_retransmit) {
    failed_ = true;
    return;
  }
  for (const Outstanding& o : unacked_) {
    transmit_i(o.ns, o.payload);
    ++stats_.retransmissions;
  }
  if (!unacked_.empty()) arm_t1();
}

}  // namespace p5::ppp
