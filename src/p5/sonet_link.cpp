#include "p5/sonet_link.hpp"

namespace p5::core {

P5SonetLink::P5SonetLink(const P5Config& cfg, sonet::StsSpec sts,
                         const sonet::LineConfig& line_cfg)
    : sts_(sts),
      a_(std::make_unique<P5>(cfg)),
      b_(std::make_unique<P5>(cfg)),
      line_ab_(line_cfg),
      line_ba_(sonet::LineConfig{line_cfg.bit_error_rate, line_cfg.burst_enter,
                                 line_cfg.burst_exit, line_cfg.burst_error_rate,
                                 line_cfg.seed + 1}) {
  framer_a_ = std::make_unique<sonet::SonetFramer>(sts, [this](std::size_t n) {
    return scr_a_tx_.scramble(a_->phy_pull_tx(n));
  });
  framer_b_ = std::make_unique<sonet::SonetFramer>(sts, [this](std::size_t n) {
    return scr_b_tx_.scramble(b_->phy_pull_tx(n));
  });
  deframer_b_ = std::make_unique<sonet::SonetDeframer>(sts, [this](BytesView payload) {
    b_->phy_push_rx(scr_b_rx_.descramble(payload));
  });
  deframer_a_ = std::make_unique<sonet::SonetDeframer>(sts, [this](BytesView payload) {
    a_->phy_push_rx(scr_a_rx_.descramble(payload));
  });
}

void P5SonetLink::exchange_frames(std::size_t frames) {
  for (std::size_t i = 0; i < frames; ++i) {
    deframer_b_->push(line_ab_.transfer(framer_a_->next_frame()));
    deframer_a_->push(line_ba_.transfer(framer_b_->next_frame()));
  }
}

}  // namespace p5::core
