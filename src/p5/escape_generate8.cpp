#include "p5/escape_generate8.hpp"

#include "common/check.hpp"

namespace p5::core {

EscapeGenerate8::EscapeGenerate8(std::string name, rtl::Fifo<rtl::Word>& in,
                                 rtl::Fifo<rtl::Word>& out, hdlc::Accm accm)
    : rtl::Module(std::move(name)), in_(in), out_(out), accm_(accm) {}

void EscapeGenerate8::eval() {
  pending_next_ = pending_;
  held_next_ = held_;

  if (!out_.can_push()) return;  // downstream backpressure: everything holds

  if (pending_) {
    // Second cycle of an escape: emit the held octet with bit 5 flipped.
    rtl::Word w;
    w.push(held_.lane(0) ^ hdlc::kXor);
    w.sof = false;  // the escape marker carried SOF if the frame starts here
    w.eof = held_.eof;
    out_.push(w);
    pending_next_ = false;
    return;
  }

  if (!in_.can_pop()) return;
  const rtl::Word raw = in_.front();
  P5_EXPECTS(raw.count() <= 1);

  if (raw.count() == 1 && accm_.must_escape(raw.lane(0))) {
    // Stall: emit 0x7D now, hold the octet (do NOT pop), flip next cycle.
    rtl::Word w;
    w.push(hdlc::kEscape);
    w.sof = raw.sof;
    out_.push(w);
    held_next_ = in_.pop();  // consume it into the hold register
    pending_next_ = true;
    ++escapes_;
    ++stalls_;
    return;
  }

  out_.push(in_.pop());  // transparent octet: straight through
}

void EscapeGenerate8::commit() {
  pending_ = pending_next_;
  held_ = held_next_;
}

}  // namespace p5::core
