file(REMOVE_RECURSE
  "libp5_core.a"
)
