// The paper's 8-bit Escape Generate: the stall design (Section 3).
//
// "Considering the Escape Generate block for an 8-bit system, if a flag
// character was present, the system will halt the input data for 1 clock
// cycle while simple manipulation takes place and an extra byte is
// inserted." — no byte sorter, no resynchronisation buffer: one pending
// flip-flop and a comparator pair, which is why Table 3's 8-bit module is
// 22 LUTs / 6 FFs against the 32-bit module's hundreds.
//
// The generic EscapeGenerate (escape_generate.hpp) runs the sorter
// micro-architecture at every width for uniformity; this module is the
// faithful 8-bit alternative, matching the gate-level
// make_escape_generate_circuit(1) cycle for cycle. Byte-stream behaviour is
// identical; the difference is architectural (stall vs buffer) and shows up
// as 1-cycle instead of 4-cycle first-octet latency.
#pragma once

#include "common/types.hpp"
#include "hdlc/accm.hpp"
#include "rtl/fifo.hpp"
#include "rtl/module.hpp"
#include "rtl/word.hpp"

namespace p5::core {

class EscapeGenerate8 final : public rtl::Module {
 public:
  EscapeGenerate8(std::string name, rtl::Fifo<rtl::Word>& in, rtl::Fifo<rtl::Word>& out,
                  hdlc::Accm accm = hdlc::Accm::sonet());

  void eval() override;
  void commit() override;

  [[nodiscard]] u64 escapes_inserted() const { return escapes_; }
  [[nodiscard]] u64 stall_cycles() const { return stalls_; }

 private:
  rtl::Fifo<rtl::Word>& in_;
  rtl::Fifo<rtl::Word>& out_;
  hdlc::Accm accm_;

  // The held octet while pending (the paper's "halted" input byte).
  bool pending_ = false;
  rtl::Word held_;

  bool pending_next_ = false;
  rtl::Word held_next_;

  u64 escapes_ = 0;
  u64 stalls_ = 0;
};

}  // namespace p5::core
