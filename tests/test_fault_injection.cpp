// Deterministic fault injection over the whole stack: a seeded FaultyLine
// mangles wire streams (bit errors, byte slips, truncation, HDLC aborts,
// SONET pointer events) and every receive engine must (a) agree with every
// other engine, (b) never deliver a corrupted frame as good payload, and
// (c) resynchronise once the noise stops. Failures print their case seed;
// replay with P5_TEST_SEED (see TESTING.md).
#include <gtest/gtest.h>

#include <algorithm>

#include "hdlc/delineation.hpp"
#include "hdlc/frame.hpp"
#include "p5/sonet_link.hpp"
#include "testing/diff_oracle.hpp"
#include "testing/fault.hpp"
#include "testing/property.hpp"

namespace p5::testing {
namespace {

/// Every delivered (protocol, payload) must be one of the sent frames —
/// multiset containment, so a duplicated delivery is also a failure.
bool deliveries_subset_of_sent(const std::vector<DiffOracle::Delivery>& delivered,
                               std::vector<DiffOracle::Delivery> sent) {
  for (const auto& d : delivered) {
    const auto it = std::find(sent.begin(), sent.end(), d);
    if (it == sent.end()) return false;
    sent.erase(it);
  }
  return true;
}

struct WireStream {
  Bytes wire;
  std::vector<DiffOracle::Delivery> sent;
};

WireStream make_stream(const hdlc::FrameConfig& cfg, Xoshiro256& rng, std::size_t frames,
                       std::size_t max_payload) {
  WireStream s;
  s.wire.assign(2, hdlc::kFlag);
  for (std::size_t f = 0; f < frames; ++f) {
    const u16 protocol = gen_protocol(rng);
    const Bytes payload = gen_payload(rng, 1 + rng.below(max_payload));
    append(s.wire, hdlc::build_wire_frame(cfg, protocol, payload));
    s.sent.push_back({protocol, payload});
    for (u64 fill = rng.below(3); fill > 0; --fill) s.wire.push_back(hdlc::kFlag);
  }
  return s;
}

// ---- the FaultyLine itself ---------------------------------------------

TEST(FaultyLineModel, SameSeedProducesIdenticalDamageAndStats) {
  FaultSpec spec;
  spec.bit_error_rate = 1e-3;
  spec.slip_insert_rate = 0.2;
  spec.slip_delete_rate = 0.2;
  spec.truncate_rate = 0.1;
  spec.abort_rate = 0.1;
  spec.seed = 77;
  FaultyLine a(spec), b(spec);
  Xoshiro256 rng(5);
  for (int i = 0; i < 200; ++i) {
    const Bytes chunk = rng.bytes(1 + rng.below(300));
    EXPECT_EQ(a.transfer(chunk), b.transfer(chunk)) << "chunk " << i;
  }
  EXPECT_EQ(a.stats().events(), b.stats().events());
  EXPECT_EQ(a.stats().bit_flips, b.stats().bit_flips);
  EXPECT_GT(a.stats().events(), 0u);
}

TEST(FaultyLineModel, CleanSpecIsAPassThrough) {
  FaultyLine line(FaultSpec::clean());
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) {
    const Bytes chunk = rng.bytes(rng.below(200));
    EXPECT_EQ(line.transfer(chunk), chunk);
  }
  EXPECT_EQ(line.stats().events(), 0u);
  EXPECT_EQ(line.stats().faulted_chunks, 0u);
  EXPECT_EQ(line.stats().chunks, 50u);
}

TEST(FaultyLineModel, DropPresetErasesWholeChunksAndCountsThem) {
  FaultyLine line(FaultSpec::drop(0.5, 3));
  Xoshiro256 rng(5);
  u64 dropped = 0, passed = 0;
  for (int i = 0; i < 200; ++i) {
    const Bytes chunk = rng.bytes(1 + rng.below(64));
    const Bytes out = line.transfer(chunk);
    if (out.empty()) {
      ++dropped;
    } else {
      EXPECT_EQ(out, chunk);  // a surviving chunk is untouched
      ++passed;
    }
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(passed, 0u);
  EXPECT_EQ(line.stats().drops, dropped);
  EXPECT_EQ(line.stats().faulted_chunks, dropped);
  EXPECT_EQ(line.stats().events(), dropped);
}

TEST(FaultyLineModel, EveryFaultClassIsCountedAndShapedCorrectly) {
  Xoshiro256 rng(11);
  const Bytes chunk = rng.bytes(256);

  FaultyLine slips(FaultSpec::slips(1.0, 0.0, 3));
  EXPECT_EQ(slips.transfer(chunk).size(), chunk.size() + 1);
  EXPECT_EQ(slips.stats().inserts, 1u);

  FaultyLine dels(FaultSpec::slips(0.0, 1.0, 3));
  EXPECT_EQ(dels.transfer(chunk).size(), chunk.size() - 1);
  EXPECT_EQ(dels.stats().deletes, 1u);

  FaultyLine trunc(FaultSpec::truncation(1.0, 3));
  EXPECT_LT(trunc.transfer(chunk).size(), chunk.size());
  EXPECT_EQ(trunc.stats().truncations, 1u);

  FaultyLine abort(FaultSpec::aborts(1.0, 3));
  const Bytes aborted = abort.transfer(chunk);
  EXPECT_EQ(abort.stats().aborts_injected, 1u);
  bool found = false;
  for (std::size_t i = 0; i + 1 < aborted.size(); ++i)
    found |= aborted[i] == hdlc::kEscape && aborted[i + 1] == hdlc::kFlag;
  EXPECT_TRUE(found) << "no 7D 7E abort sequence in the damaged chunk";

  FaultyLine ber(FaultSpec::ber(1.0, 3));
  Bytes inverted = chunk;
  for (u8& b : inverted) b = static_cast<u8>(~b);
  EXPECT_EQ(ber.transfer(chunk), inverted);
  EXPECT_EQ(ber.stats().bit_flips, 8 * chunk.size());
}

TEST(FaultyLineModel, BitFlipCountTracksTheConfiguredRate) {
  // 1 Mbit at BER 1e-3 should see ~1000 flips; the geometric skip-sampler
  // must land in a loose statistical window around that.
  FaultyLine line(FaultSpec::ber(1e-3, 21));
  Bytes chunk(125'000, 0x00);
  line.apply(chunk);
  EXPECT_GT(line.stats().bit_flips, 800u);
  EXPECT_LT(line.stats().bit_flips, 1200u);
  u64 set_bits = 0;
  for (const u8 b : chunk) set_bits += static_cast<u64>(__builtin_popcount(b));
  EXPECT_EQ(set_bits, line.stats().bit_flips) << "flip count must match actual damage";
}

TEST(FaultyLineModel, ActiveChunksBoundsTheNoiseWindow) {
  FaultSpec spec = FaultSpec::ber(1.0, 5);
  spec.active_chunks = 3;
  FaultyLine line(spec);
  Xoshiro256 rng(6);
  for (u64 i = 0; i < 10; ++i) {
    const Bytes chunk = rng.bytes(32);
    const Bytes out = line.transfer(chunk);
    if (i < 3)
      EXPECT_NE(out, chunk) << "chunk " << i << " should be damaged";
    else
      EXPECT_EQ(out, chunk) << "chunk " << i << " should pass clean";
  }
  EXPECT_EQ(line.stats().faulted_chunks, 3u);
}

// ---- corrupted frames are never delivered as good payload ---------------

// The central property: under an arbitrary mix of fault classes, all three
// receive engines agree on the accepted-frame sequence, and every accepted
// frame is one that was actually sent — corruption may *lose* frames but can
// never forge or alter one.
TEST(FaultInjection, NoEngineEverDeliversACorruptedFrame) {
  DiffOracle oracle;
  PropertyOptions opt;
  opt.cases = 250;
  opt.seed = 0xFA017001ull;
  opt.min_size = 4;
  opt.max_size = 160;
  const auto res = check_property("fault_no_silent_corruption", opt, [&](CaseContext& c) {
    auto stream = make_stream(oracle.config(), c.rng, 6, c.size);

    FaultSpec spec;
    spec.seed = c.seed ^ 0xABCDull;
    spec.bit_error_rate = c.rng.chance(0.7) ? (c.rng.chance(0.5) ? 2.5e-3 : 5e-4) : 0.0;
    spec.slip_insert_rate = c.rng.chance(0.3) ? 0.5 : 0.0;
    spec.slip_delete_rate = c.rng.chance(0.3) ? 0.5 : 0.0;
    spec.truncate_rate = c.rng.chance(0.2) ? 0.3 : 0.0;
    spec.abort_rate = c.rng.chance(0.3) ? 0.5 : 0.0;
    FaultyLine line(spec);
    line.apply(stream.wire);

    const auto rx = oracle.receive(stream.wire);
    if (!rx.agree) return c.fail("engines diverged: " + rx.diagnosis);
    if (!deliveries_subset_of_sent(rx.delivered, stream.sent))
      return c.fail("a delivered frame was never sent (silent corruption)");
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// FCS-32 catches every single-bit error: flip any one bit anywhere in the
// frame (delimiters included) and nothing may be delivered, by any engine.
TEST(FaultInjection, AnySingleBitFlipRejectsTheFrameEverywhere) {
  DiffOracle oracle;
  PropertyOptions opt;
  opt.cases = 400;
  opt.seed = 0xFA017002ull;
  opt.min_size = 1;
  opt.max_size = 120;
  const auto res = check_property("fault_single_bit_flip", opt, [&](CaseContext& c) {
    const u16 protocol = gen_protocol(c.rng);
    const Bytes payload = gen_payload(c.rng, c.size);
    const Bytes frame = hdlc::build_wire_frame(oracle.config(), protocol, payload);

    Bytes wire(2, hdlc::kFlag);  // leading fill so a damaged opening flag still opens
    const std::size_t base = wire.size();
    append(wire, frame);
    wire.push_back(hdlc::kFlag);  // trailing fill closes a damaged closing flag

    const std::size_t bit = c.rng.below(8 * frame.size());
    wire[base + bit / 8] ^= static_cast<u8>(1u << (bit % 8));

    const auto rx = oracle.receive(wire);
    if (!rx.agree) return c.fail("engines diverged: " + rx.diagnosis);
    if (!rx.delivered.empty())
      return c.fail("bit " + std::to_string(bit) + " flipped yet " +
                    std::to_string(rx.delivered.size()) + " frame(s) were delivered");
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// An injected transmitter abort (7D 7E) must kill at most the frames it
// lands in and never produce a delivery that was not sent. (An abort that
// happens to land in inter-frame fill legitimately loses nothing, so frame
// loss itself is asserted by the deterministic test below.)
TEST(FaultInjection, InjectedAbortsAreContained) {
  DiffOracle oracle;
  PropertyOptions opt;
  opt.cases = 300;
  opt.seed = 0xFA017003ull;
  opt.min_size = 8;
  opt.max_size = 120;
  const auto res = check_property("fault_abort_injection", opt, [&](CaseContext& c) {
    auto stream = make_stream(oracle.config(), c.rng, 4, c.size);
    FaultSpec spec = FaultSpec::aborts(1.0, c.seed ^ 0x5EEDull);
    FaultyLine line(spec);
    line.apply(stream.wire);

    const auto rx = oracle.receive(stream.wire);
    if (!rx.agree) return c.fail("engines diverged: " + rx.diagnosis);
    if (!deliveries_subset_of_sent(rx.delivered, stream.sent))
      return c.fail("abort injection forged a delivery");
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// Surgical abort: 7D 7E planted mid-body of the middle frame kills exactly
// that frame — its neighbours are delivered untouched by every engine, and
// the delineator actually records the abort.
TEST(FaultInjection, AbortMidFrameKillsExactlyThatFrame) {
  DiffOracle oracle;
  Xoshiro256 rng(0xAB0B7);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes wire(2, hdlc::kFlag);
    std::vector<DiffOracle::Delivery> sent;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    for (int f = 0; f < 3; ++f) {
      const u16 protocol = gen_protocol(rng);
      const Bytes payload = gen_payload(rng, 16 + rng.below(64));
      const Bytes frame = hdlc::build_wire_frame(oracle.config(), protocol, payload);
      spans.emplace_back(wire.size(), frame.size());
      append(wire, frame);
      sent.push_back({protocol, payload});
    }
    // Overwrite two octets strictly inside the middle frame's body (clear of
    // both its delimiters).
    const auto [start, len] = spans[1];
    const std::size_t pos = start + 2 + rng.below(len - 5);
    wire[pos] = hdlc::kEscape;
    wire[pos + 1] = hdlc::kFlag;

    const auto rx = oracle.receive(wire);
    ASSERT_TRUE(rx.agree) << rx.diagnosis;
    ASSERT_TRUE(deliveries_subset_of_sent(rx.delivered, sent)) << "trial " << trial;
    // Frame 0 and frame 2 must survive; the aborted frame 1 must not.
    EXPECT_NE(std::find(rx.delivered.begin(), rx.delivered.end(), sent[0]), rx.delivered.end());
    EXPECT_NE(std::find(rx.delivered.begin(), rx.delivered.end(), sent[2]), rx.delivered.end());
    EXPECT_EQ(std::find(rx.delivered.begin(), rx.delivered.end(), sent[1]), rx.delivered.end())
        << "aborted frame was delivered (trial " << trial << ")";
  }
}

// Bounded loss window: faults confined to the first chunks of a stream may
// eat frames inside (and one frame beyond, via a destroyed closing flag) the
// noise window, but every later frame must be delivered intact by every
// engine — the delineator's flag hunt guarantees resynchronisation.
TEST(FaultInjection, ReceiversResynchroniseOnceTheNoiseStops) {
  DiffOracle oracle;
  PropertyOptions opt;
  opt.cases = 200;
  opt.seed = 0xFA017004ull;
  opt.min_size = 4;
  opt.max_size = 120;
  const auto res = check_property("fault_resync", opt, [&](CaseContext& c) {
    constexpr std::size_t kFrames = 10;
    constexpr u64 kNoisy = 5;
    FaultSpec spec;
    spec.seed = c.seed ^ 0xF00Dull;
    spec.bit_error_rate = 2e-3;
    spec.slip_insert_rate = 0.4;
    spec.slip_delete_rate = 0.4;
    spec.truncate_rate = 0.3;
    spec.active_chunks = kNoisy;  // chunks 0..4 noisy, 5.. clean
    FaultyLine line(spec);

    Bytes wire;
    std::vector<DiffOracle::Delivery> sent;
    for (std::size_t f = 0; f < kFrames; ++f) {
      const u16 protocol = gen_protocol(c.rng);
      const Bytes payload = gen_payload(c.rng, 1 + c.rng.below(c.size));
      Bytes chunk = hdlc::build_wire_frame(oracle.config(), protocol, payload);
      line.apply(chunk);  // one frame per chunk: the noise window is frames 0..4
      append(wire, chunk);
      sent.push_back({protocol, payload});
    }

    const auto rx = oracle.receive(wire);
    if (!rx.agree) return c.fail("engines diverged: " + rx.diagnosis);
    if (!deliveries_subset_of_sent(rx.delivered, sent))
      return c.fail("silent corruption during resync");
    // Frames kNoisy+1.. are clean AND preceded by a clean closing flag; all
    // of them must have been delivered, in order, as the delivered suffix.
    const std::size_t must = kFrames - kNoisy - 1;
    if (rx.delivered.size() < must)
      return c.fail("only " + std::to_string(rx.delivered.size()) + " frames delivered; the " +
                    std::to_string(must) + " post-noise frames must all survive");
    for (std::size_t i = 0; i < must; ++i) {
      const auto& got = rx.delivered[rx.delivered.size() - must + i];
      if (!(got == sent[kNoisy + 1 + i]))
        return c.fail("post-noise frame " + std::to_string(kNoisy + 1 + i) +
                      " was not delivered intact");
    }
  });
  EXPECT_TRUE(res.ok) << res.message;
}

// ---- faults on the SONET line under a full P5SonetLink ------------------

// The optical-line insertion point: pointer-adjustment slips and bit noise
// on whole scrambled STS-3c frames. The deframer must re-hunt A1/A2 after a
// slip, the self-sync descrambler must re-seed, and once the noise window
// closes every subsequently submitted datagram must flow end to end — with
// no corrupted payload ever surfacing at the far P5.
TEST(FaultInjection, SonetPointerEventsAndBerRecoverEndToEnd) {
  core::P5Config pc;
  pc.lanes = 4;
  core::P5SonetLink link(pc, sonet::kSts3c, sonet::LineConfig{});

  auto ab = std::make_shared<FaultyLine>([] {
    FaultSpec s = FaultSpec::pointer_events(0.25, sonet::kSts3c, 0x50E7);
    s.bit_error_rate = 1e-5;
    s.active_chunks = 60;
    return s;
  }());
  link.set_line_tap([ab](Bytes& b) { ab->apply(b); }, {});

  std::vector<Bytes> sent, got;
  link.b().set_rx_sink([&](core::RxDelivery d) { got.push_back(std::move(d.payload)); });

  Xoshiro256 rng(0xBADCAB);
  auto submit_burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      Bytes payload = gen_payload(rng, 32 + rng.below(200));
      ASSERT_TRUE(link.a().submit_datagram(0x0021, payload));
      sent.push_back(std::move(payload));
      link.exchange_frames(2);
    }
  };

  submit_burst(25);             // rides the noisy window (chunks 0..59)
  link.exchange_frames(40);     // burn through the rest of the noise
  ASSERT_GT(ab->stats().pointer_events, 0u) << "the noise window never slipped a pointer";
  const std::size_t survivors = got.size();

  const std::size_t clean_mark = sent.size();
  submit_burst(25);             // clean line from here on
  link.exchange_frames(20);

  // No silent corruption, ever: every delivered payload was submitted.
  for (const Bytes& p : got)
    EXPECT_NE(std::find(sent.begin(), sent.end(), p), sent.end())
        << "a payload was delivered that was never sent";
  // Full recovery: every datagram submitted after the noise stopped arrives.
  ASSERT_GE(got.size(), survivors);
  std::vector<Bytes> after(got.begin() + static_cast<std::ptrdiff_t>(survivors), got.end());
  for (std::size_t i = clean_mark; i < sent.size(); ++i)
    EXPECT_NE(std::find(after.begin(), after.end(), sent[i]), after.end())
        << "post-noise datagram " << i - clean_mark << " was lost";
}

// The same scenario replayed twice must produce byte-identical deliveries
// and identical fault statistics — the whole stack is seed-deterministic.
TEST(FaultInjection, SonetFaultScenarioIsDeterministic) {
  auto run = [] {
    core::P5Config pc;
    core::P5SonetLink link(pc, sonet::kSts3c, sonet::LineConfig{});
    auto ab = std::make_shared<FaultyLine>([] {
      FaultSpec s = FaultSpec::ber(5e-5, 1234);
      s.slip_insert_rate = 0.05;
      return s;
    }());
    link.set_line_tap([ab](Bytes& b) { ab->apply(b); }, {});
    Bytes transcript;
    link.b().set_rx_sink([&](core::RxDelivery d) { append(transcript, d.payload); });
    Xoshiro256 rng(7);
    for (int i = 0; i < 30; ++i) {
      (void)link.a().submit_datagram(0x0021, rng.bytes(64 + rng.below(128)));
      link.exchange_frames(2);
    }
    link.exchange_frames(20);
    transcript.push_back(static_cast<u8>(ab->stats().events() & 0xFF));
    return transcript;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace p5::testing
