file(REMOVE_RECURSE
  "CMakeFiles/test_p5_system.dir/test_p5_system.cpp.o"
  "CMakeFiles/test_p5_system.dir/test_p5_system.cpp.o.d"
  "test_p5_system"
  "test_p5_system.pdb"
  "test_p5_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p5_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
