# Empty compiler generated dependencies file for ppp_session.
# This may be replaced when dependencies are built.
