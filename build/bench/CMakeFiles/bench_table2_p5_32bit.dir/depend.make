# Empty dependencies file for bench_table2_p5_32bit.
# This may be replaced when dependencies are built.
