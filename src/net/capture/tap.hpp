// CaptureTap — record any point of the pipeline to a pcap.
//
// The pipeline's observation hooks all share one shape: a callable fed the
// bytes flowing past (`P5SonetLink::set_line_tap`, `Tunnel::set_rx_tap`,
// the server's delivered tap — all `void(Bytes&)`-compatible). CaptureTap
// turns that shape into a pcap: construct one, hand `line_tap()` to the
// hook, and every frame that passes becomes a record. Because
// testing::FaultyLine is itself such a callable, taps compose around it —
// tap → fault → tap gives the pre/post pair that makes a fault scenario
// diffable offline (`tcpdump -r` on each side of the corruption).
//
// The tap keeps an exact ledger: records + drops == frames seen, where a
// drop is a frame the tap saw but did not keep (stream write failure or the
// max_records bound). Tests pin this ledger against the pipeline's own
// frame counters.
//
// Sinks: a streaming PcapWriter (file mode) or an in-memory record vector
// (buffer mode — what the record→replay→record fixpoint test diffs).
// Thread-safe: one mutex around the sink, because server sessions invoke
// delivered taps from shard threads.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/capture/pcap.hpp"

namespace p5::net::capture {

struct TapStats {
  u64 records = 0;  ///< frames kept
  u64 bytes = 0;    ///< payload octets kept
  u64 drops = 0;    ///< frames seen but not kept (bound hit or write failure)

  [[nodiscard]] u64 frames_seen() const { return records + drops; }
};

class CaptureTap {
 public:
  /// Buffer mode: records accumulate in memory (take_records()).
  explicit CaptureTap(PcapMeta meta = {});
  ~CaptureTap();
  CaptureTap(const CaptureTap&) = delete;
  CaptureTap& operator=(const CaptureTap&) = delete;

  /// Switch to file mode: stream records to `path` as they arrive.
  /// False: the file could not be created (the tap then counts every
  /// frame as a drop rather than silently losing the ledger).
  [[nodiscard]] bool open(const std::string& path);

  /// Record with the tap's own clock (monotonic 1 µs per frame from epoch 0
  /// by default, or wall time after use_wall_clock()). Deterministic
  /// timestamps keep test captures reproducible.
  void record(BytesView frame);
  /// Record with an explicit timestamp — what replay-side taps use so a
  /// record→replay→record loop reproduces the original file byte-exactly.
  void record_at(u64 ts_ns, BytesView frame);

  /// Adapter matching the pipeline's `void(Bytes&)` observation hooks.
  /// The returned callable borrows `this`; keep the tap alive while hooked.
  [[nodiscard]] std::function<void(Bytes&)> line_tap();

  /// Stamp records with CLOCK_REALTIME instead of the synthetic clock.
  void use_wall_clock() { wall_clock_ = true; }
  /// Stop keeping records past `n` (they still count as drops — the ledger
  /// stays exact while the file stays bounded).
  void set_max_records(u64 n) { max_records_ = n; }

  [[nodiscard]] TapStats stats() const;
  /// Buffer mode: move the accumulated records out (empty in file mode).
  [[nodiscard]] std::vector<PcapRecord> take_records();
  /// File mode: flush and close the stream (records afterwards drop).
  void close();

  [[nodiscard]] const PcapMeta& meta() const { return meta_; }

 private:
  void record_locked(u64 ts_ns, BytesView frame);
  [[nodiscard]] u64 now_ns_locked();

  mutable std::mutex mu_;
  PcapMeta meta_;
  PcapWriter writer_;        ///< file mode when open
  bool file_mode_ = false;   ///< true once open() was attempted
  std::vector<PcapRecord> records_;  ///< buffer mode
  TapStats stats_;
  u64 max_records_ = 0;  ///< 0 = unbounded
  bool wall_clock_ = false;
  u64 synth_ns_ = 0;  ///< synthetic clock: advances 1 µs per record
};

}  // namespace p5::net::capture
