#include "fastpath/escape_simd.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "fastpath/stuff_fast.hpp"

// SIMD tiers are x86-64 only (the portable SWAR/scalar tiers cover everything
// else) and use GCC/Clang target attributes so no global -mavx2 is needed:
// each kernel is compiled for its own ISA and only ever called after CPUID
// dispatch proves the host supports it.
#if !defined(P5_FORCE_SCALAR) && defined(__x86_64__) && defined(__GNUC__)
#define P5_ESCAPE_SIMD 1
#include <immintrin.h>
#else
#define P5_ESCAPE_SIMD 0
#endif

namespace p5::fastpath {

namespace {

// ---------------------------------------------------------------------------
// Group tables. All kernels resolve escapes in 8-octet groups addressed by an
// 8-bit mask, so every per-group decision is one table lookup — the software
// analogue of the paper's byte sorter, which routes an 8-octet word (worst
// case doubled to 16) through a crossbar in one pipeline stage.
// ---------------------------------------------------------------------------

/// Stuff expansion for a group with escape mask m: output slot j of the
/// 16-octet result is either a pass-through octet, the 0x7D marker of an
/// escaped octet, or its xor-0x20 image. Output length = 8 + popcount(m).
struct ExpandTables {
  u8 shuf[256][16];    ///< pshufb source index per output slot (0x80 = zero)
  u8 second[256][16];  ///< 0x20 at escaped-value slots (applied by xor)
  u8 first[256][16];   ///< 0xFF at escape-marker slots (blended to 0x7D)
};

constexpr ExpandTables make_expand_tables() {
  ExpandTables t{};
  for (unsigned m = 0; m < 256; ++m) {
    unsigned j = 0;
    for (unsigned i = 0; i < 8; ++i) {
      if ((m >> i) & 1u) {
        t.shuf[m][j] = static_cast<u8>(i);
        t.first[m][j] = 0xFF;
        ++j;
        t.shuf[m][j] = static_cast<u8>(i);
        t.second[m][j] = hdlc::kXor;
        ++j;
      } else {
        t.shuf[m][j] = static_cast<u8>(i);
        ++j;
      }
    }
    for (; j < 16; ++j) t.shuf[m][j] = 0x80;
  }
  return t;
}

constexpr ExpandTables kExpand = make_expand_tables();

/// Resolve which 0x7D octets of a window (equality mask `b`, up to 32 bits)
/// are escape *markers*, i.e. not themselves escaped by the previous octet —
/// a run of k consecutive 0x7D yields markers at alternate positions, so
/// 7D 7D decodes to 0x5D, not two markers. Branchless: adding each run's
/// start bit carries through the run, which recovers the run extent; the
/// alternation is then start-parity masking. `pending` carries the
/// trailing-marker state across windows (and in: an incoming pending escape
/// consumes octet 0).
struct MarkerResolve {
  u32 markers;  ///< marker octets (dropped by compression)
  u32 escaped;  ///< escaped octets (xor-0x20 and kept)
};

inline MarkerResolve resolve_markers(u64 b, unsigned nbits, unsigned& pending) {
  b &= ~static_cast<u64>(pending);
  const u64 starts = b & ~(b << 1);
  constexpr u64 kEven = 0x5555555555555555ull;
  const u64 even_runs = (b ^ (b + (starts & kEven))) & b;
  const u64 odd_runs = (b ^ (b + (starts & ~kEven))) & b;
  const u64 markers = (even_runs & kEven) | (odd_runs & ~kEven);
  const u64 escaped = (markers << 1) | pending;
  pending = static_cast<unsigned>((markers >> (nbits - 1)) & 1u);
  return {static_cast<u32>(markers), static_cast<u32>(escaped)};
}

/// kSpread64[m]: byte i = 0xFF iff bit i of m — turns an escaped-octet mask
/// into an 8-octet xor mask (& 0x20..20).
constexpr std::array<u64, 256> make_spread_table() {
  std::array<u64, 256> t{};
  for (unsigned m = 0; m < 256; ++m) {
    u64 v = 0;
    for (unsigned i = 0; i < 8; ++i)
      if ((m >> i) & 1u) v |= 0xFFull << (8 * i);
    t[m] = v;
  }
  return t;
}

constexpr std::array<u64, 256> kSpread64 = make_spread_table();

/// Destuff compression: drop the marker octets of a group, keep the rest in
/// order. Output length = 8 - popcount(markers).
struct CompressTable {
  u8 shuf[256][16];
};

constexpr CompressTable make_compress_table() {
  CompressTable t{};
  for (unsigned m = 0; m < 256; ++m) {
    unsigned j = 0;
    for (unsigned i = 0; i < 8; ++i)
      if (((m >> i) & 1u) == 0) t.shuf[m][j++] = static_cast<u8>(i);
    for (; j < 16; ++j) t.shuf[m][j] = 0x80;
  }
  return t;
}

constexpr CompressTable kCompress = make_compress_table();

/// Same as kCompress but sourcing the *high* half of a 16-octet window
/// (indices 8..15), so both halves of a window compress from one register.
constexpr CompressTable make_compress_hi_table() {
  CompressTable t{};
  for (unsigned m = 0; m < 256; ++m) {
    unsigned j = 0;
    for (unsigned i = 0; i < 8; ++i)
      if (((m >> i) & 1u) == 0) t.shuf[m][j++] = static_cast<u8>(8 + i);
    for (; j < 16; ++j) t.shuf[m][j] = 0x80;
  }
  return t;
}

constexpr CompressTable kCompressHi = make_compress_hi_table();

/// kShiftUp[k]: pshufb control that moves a register's octets up by k slots
/// (zero-filling below), used to butt the compressed high half against the
/// compressed low half before one merged store.
constexpr std::array<std::array<u8, 16>, 9> make_shift_up_table() {
  std::array<std::array<u8, 16>, 9> t{};
  for (unsigned k = 0; k <= 8; ++k)
    for (unsigned j = 0; j < 16; ++j)
      t[k][j] = j >= k ? static_cast<u8>(j - k) : 0x80;
  return t;
}

constexpr std::array<std::array<u8, 16>, 9> kShiftUp = make_shift_up_table();

// ---------------------------------------------------------------------------
// Exact scalar paths (the kScalar tier, small frames, and vector tails).
// Byte-identical to fastpath::scalar:: by construction.
// ---------------------------------------------------------------------------

void stuff_scalar(Bytes& out, BytesView data, const EscapeClassTables& t) {
  for (const u8 b : data) {
    if (t.cls[b]) {
      out.push_back(hdlc::kEscape);
      out.push_back(static_cast<u8>(b ^ hdlc::kXor));
    } else {
      out.push_back(b);
    }
  }
}

bool destuff_scalar(Bytes& out, BytesView data) {
  bool esc = false;
  for (const u8 b : data) {
    if (esc) {
      out.push_back(static_cast<u8>(b ^ hdlc::kXor));
      esc = false;
    } else if (b == hdlc::kEscape) {
      esc = true;
    } else {
      out.push_back(b);
    }
  }
  return !esc;
}

u32 stuff_crc_scalar(Bytes& out, BytesView data, const EscapeClassTables& t, const SliceCrc& crc,
                     u32 state) {
  for (const u8 b : data) {
    state = crc.update_byte(state, b);
    if (t.cls[b]) {
      out.push_back(hdlc::kEscape);
      out.push_back(static_cast<u8>(b ^ hdlc::kXor));
    } else {
      out.push_back(b);
    }
  }
  return state & crc.spec().mask();
}

inline void count_window(TierCounters& c, unsigned popcnt) {
  if (popcnt <= 2)
    ++c.sparse_windows;
  else
    ++c.dense_windows;
}

#if P5_ESCAPE_SIMD

// ---------------------------------------------------------------------------
// SSE2 tier: vector escape *detection* only (no pshufb), exact scalar emit on
// flagged windows. With a nonzero ACCM the detector over-approximates (all
// control octets flag the window); the scalar emit applies the exact class
// table, so the wire image is still exact.
// ---------------------------------------------------------------------------

inline unsigned detect16_sse2(__m128i v, bool controls) {
  __m128i m = _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(hdlc::kFlag))),
                           _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(hdlc::kEscape))));
  if (controls)
    m = _mm_or_si128(m, _mm_cmpeq_epi8(_mm_min_epu8(v, _mm_set1_epi8(0x1F)), v));
  return static_cast<unsigned>(_mm_movemask_epi8(m));
}

std::size_t stuff_sse2(u8* dst, const u8* p, std::size_t n, const EscapeClassTables& t,
                       TierCounters& c) {
  std::size_t w = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned mask = detect16_sse2(v, t.has_controls);
    if (mask == 0) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), v);
      w += 16;
      ++c.clean_windows;
      continue;
    }
    count_window(c, static_cast<unsigned>(std::popcount(mask)));
    for (std::size_t k = i; k < i + 16; ++k) {
      const u8 b = p[k];
      if (t.cls[b]) {
        dst[w++] = hdlc::kEscape;
        dst[w++] = static_cast<u8>(b ^ hdlc::kXor);
      } else {
        dst[w++] = b;
      }
    }
  }
  for (; i < n; ++i) {
    const u8 b = p[i];
    if (t.cls[b]) {
      dst[w++] = hdlc::kEscape;
      dst[w++] = static_cast<u8>(b ^ hdlc::kXor);
    } else {
      dst[w++] = b;
    }
  }
  return w;
}

bool destuff_sse2(u8* dst, const u8* p, std::size_t n, std::size_t& w_out, TierCounters& c) {
  std::size_t w = 0;
  std::size_t i = 0;
  bool pending = false;
  const __m128i escv = _mm_set1_epi8(static_cast<char>(hdlc::kEscape));
  while (i + 16 <= n) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, escv)));
    if (mask == 0 && !pending) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), v);
      w += 16;
      i += 16;
      ++c.clean_windows;
      continue;
    }
    count_window(c, static_cast<unsigned>(std::popcount(mask)));
    // Dirty-window hysteresis: without pshufb the emit is scalar anyway, so
    // skip re-detection for the next few windows — dense streams then pay
    // one vector probe per 64 octets instead of per 16.
    const std::size_t stop = std::min(i + 64, n);
    for (; i < stop; ++i) {
      const u8 b = p[i];
      if (pending) {
        dst[w++] = static_cast<u8>(b ^ hdlc::kXor);
        pending = false;
      } else if (b == hdlc::kEscape) {
        pending = true;
      } else {
        dst[w++] = b;
      }
    }
  }
  for (; i < n; ++i) {
    const u8 b = p[i];
    if (pending) {
      dst[w++] = static_cast<u8>(b ^ hdlc::kXor);
      pending = false;
    } else if (b == hdlc::kEscape) {
      pending = true;
    } else {
      dst[w++] = b;
    }
  }
  w_out = w;
  return !pending;
}

// ---------------------------------------------------------------------------
// SSSE3 tier: exact vector classification (ACCM nibble tables through pshufb)
// plus branchless table-driven group expand/compress.
// ---------------------------------------------------------------------------

/// Exact per-octet escape classification of a 16-octet window as a movemask.
__attribute__((target("ssse3"))) inline unsigned classify16(__m128i v,
                                                            const EscapeClassTables& t) {
  __m128i m = _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(hdlc::kFlag))),
                           _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(hdlc::kEscape))));
  if (t.has_controls) {
    const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.accm_lo));
    const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.accm_hi));
    const __m128i nib = _mm_and_si128(v, _mm_set1_epi8(0x0F));
    const __m128i sel_hi =
        _mm_cmpeq_epi8(_mm_and_si128(v, _mm_set1_epi8(0x10)), _mm_set1_epi8(0x10));
    const __m128i mapped = _mm_or_si128(_mm_andnot_si128(sel_hi, _mm_shuffle_epi8(lo, nib)),
                                        _mm_and_si128(sel_hi, _mm_shuffle_epi8(hi, nib)));
    // Only octets < 0x20 are control candidates; everything else must ignore
    // the (garbage) nibble lookup.
    const __m128i is_ctrl = _mm_cmpeq_epi8(_mm_min_epu8(v, _mm_set1_epi8(0x1F)), v);
    m = _mm_or_si128(m, _mm_and_si128(mapped, is_ctrl));
  }
  return static_cast<unsigned>(_mm_movemask_epi8(m));
}

/// Branchless stuff of one 8-octet group (in the low half of `g`) with escape
/// mask m: pshufb expansion, xor-0x20 at value slots, blend 0x7D at marker
/// slots, one 16-octet store. Returns the advanced write cursor.
__attribute__((target("ssse3"))) inline std::size_t stuff_group(u8* dst, std::size_t w, __m128i g,
                                                                unsigned m) {
  m &= 0xFFu;
  __m128i s =
      _mm_shuffle_epi8(g, _mm_loadu_si128(reinterpret_cast<const __m128i*>(kExpand.shuf[m])));
  s = _mm_xor_si128(s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(kExpand.second[m])));
  const __m128i f = _mm_loadu_si128(reinterpret_cast<const __m128i*>(kExpand.first[m]));
  s = _mm_or_si128(_mm_andnot_si128(f, s),
                   _mm_and_si128(f, _mm_set1_epi8(static_cast<char>(hdlc::kEscape))));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), s);
  return w + 8 + static_cast<std::size_t>(std::popcount(m));
}

/// Branchless destuff of a whole 16-octet window given its resolved marker
/// and escaped masks: xor-0x20 every escaped octet in one pass, compress
/// each 8-octet half through its own table, butt the halves together with a
/// variable shift, and emit one merged 16-octet store.
__attribute__((target("ssse3"))) inline std::size_t destuff16(u8* dst, std::size_t w, __m128i g,
                                                              unsigned markers, unsigned escaped) {
  const unsigned m_lo = markers & 0xFFu;
  const unsigned m_hi = (markers >> 8) & 0xFFu;
  const unsigned e_lo = escaped & 0xFFu;
  const unsigned e_hi = (escaped >> 8) & 0xFFu;
  const __m128i x = _mm_and_si128(_mm_set_epi64x(static_cast<long long>(kSpread64[e_hi]),
                                                 static_cast<long long>(kSpread64[e_lo])),
                                  _mm_set1_epi8(hdlc::kXor));
  g = _mm_xor_si128(g, x);
  const __m128i lo_c = _mm_shuffle_epi8(
      g, _mm_loadu_si128(reinterpret_cast<const __m128i*>(kCompress.shuf[m_lo])));
  __m128i hi_c = _mm_shuffle_epi8(
      g, _mm_loadu_si128(reinterpret_cast<const __m128i*>(kCompressHi.shuf[m_hi])));
  const std::size_t len_lo = 8 - static_cast<std::size_t>(std::popcount(m_lo));
  hi_c = _mm_shuffle_epi8(
      hi_c, _mm_loadu_si128(reinterpret_cast<const __m128i*>(kShiftUp[len_lo].data())));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), _mm_or_si128(lo_c, hi_c));
  return w + len_lo + 8 - static_cast<std::size_t>(std::popcount(m_hi));
}

__attribute__((target("ssse3"))) std::size_t stuff_ssse3(u8* dst, const u8* p, std::size_t n,
                                                         const EscapeClassTables& t,
                                                         TierCounters& c) {
  std::size_t w = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned mask = classify16(v, t);
    if (mask == 0) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), v);
      w += 16;
      ++c.clean_windows;
      continue;
    }
    count_window(c, static_cast<unsigned>(std::popcount(mask)));
    w = stuff_group(dst, w, v, mask);
    w = stuff_group(dst, w, _mm_srli_si128(v, 8), mask >> 8);
  }
  for (; i < n; ++i) {
    const u8 b = p[i];
    if (t.cls[b]) {
      dst[w++] = hdlc::kEscape;
      dst[w++] = static_cast<u8>(b ^ hdlc::kXor);
    } else {
      dst[w++] = b;
    }
  }
  return w;
}

__attribute__((target("ssse3"))) bool destuff_ssse3(u8* dst, const u8* p, std::size_t n,
                                                    std::size_t& w_out, TierCounters& c) {
  std::size_t w = 0;
  std::size_t i = 0;
  unsigned pending = 0;
  const __m128i escv = _mm_set1_epi8(static_cast<char>(hdlc::kEscape));
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, escv)));
    if (mask == 0 && pending == 0) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), v);
      w += 16;
      ++c.clean_windows;
      continue;
    }
    count_window(c, static_cast<unsigned>(std::popcount(mask)));
    const MarkerResolve r = resolve_markers(mask, 16, pending);
    w = destuff16(dst, w, v, r.markers, r.escaped);
  }
  for (; i < n; ++i) {
    const u8 b = p[i];
    if (pending) {
      dst[w++] = static_cast<u8>(b ^ hdlc::kXor);
      pending = 0;
    } else if (b == hdlc::kEscape) {
      pending = 1;
    } else {
      dst[w++] = b;
    }
  }
  w_out = w;
  return pending == 0;
}

// ---------------------------------------------------------------------------
// AVX2 tier: 32-octet windows for detection and clean bulk copies; flagged
// windows fall back to the same 8-octet group kernels (AVX2's win is the
// clean path — group resolution is table-bound either way).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline unsigned classify32(__m256i v,
                                                           const EscapeClassTables& t) {
  __m256i m =
      _mm256_or_si256(_mm256_cmpeq_epi8(v, _mm256_set1_epi8(static_cast<char>(hdlc::kFlag))),
                      _mm256_cmpeq_epi8(v, _mm256_set1_epi8(static_cast<char>(hdlc::kEscape))));
  if (t.has_controls) {
    const __m256i lo = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.accm_lo)));
    const __m256i hi = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.accm_hi)));
    const __m256i nib = _mm256_and_si256(v, _mm256_set1_epi8(0x0F));
    const __m256i sel_hi = _mm256_cmpeq_epi8(_mm256_and_si256(v, _mm256_set1_epi8(0x10)),
                                             _mm256_set1_epi8(0x10));
    const __m256i mapped =
        _mm256_or_si256(_mm256_andnot_si256(sel_hi, _mm256_shuffle_epi8(lo, nib)),
                        _mm256_and_si256(sel_hi, _mm256_shuffle_epi8(hi, nib)));
    const __m256i is_ctrl =
        _mm256_cmpeq_epi8(_mm256_min_epu8(v, _mm256_set1_epi8(0x1F)), v);
    m = _mm256_or_si256(m, _mm256_and_si256(mapped, is_ctrl));
  }
  return static_cast<unsigned>(_mm256_movemask_epi8(m));
}

__attribute__((target("avx2"))) std::size_t stuff_avx2(u8* dst, const u8* p, std::size_t n,
                                                       const EscapeClassTables& t,
                                                       TierCounters& c) {
  std::size_t w = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned mask = classify32(v, t);
    if (mask == 0) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), v);
      w += 32;
      ++c.clean_windows;
      continue;
    }
    count_window(c, static_cast<unsigned>(std::popcount(mask)));
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    w = stuff_group(dst, w, lo, mask);
    w = stuff_group(dst, w, _mm_srli_si128(lo, 8), mask >> 8);
    w = stuff_group(dst, w, hi, mask >> 16);
    w = stuff_group(dst, w, _mm_srli_si128(hi, 8), mask >> 24);
  }
  for (; i < n; ++i) {
    const u8 b = p[i];
    if (t.cls[b]) {
      dst[w++] = hdlc::kEscape;
      dst[w++] = static_cast<u8>(b ^ hdlc::kXor);
    } else {
      dst[w++] = b;
    }
  }
  return w;
}

__attribute__((target("avx2"))) bool destuff_avx2(u8* dst, const u8* p, std::size_t n,
                                                  std::size_t& w_out, TierCounters& c) {
  std::size_t w = 0;
  std::size_t i = 0;
  unsigned pending = 0;
  const __m256i escv = _mm256_set1_epi8(static_cast<char>(hdlc::kEscape));
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, escv)));
    if (mask == 0 && pending == 0) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), v);
      w += 32;
      ++c.clean_windows;
      continue;
    }
    count_window(c, static_cast<unsigned>(std::popcount(mask)));
    const MarkerResolve r = resolve_markers(mask, 32, pending);
    w = destuff16(dst, w, _mm256_castsi256_si128(v), r.markers, r.escaped);
    w = destuff16(dst, w, _mm256_extracti128_si256(v, 1), r.markers >> 16, r.escaped >> 16);
  }
  for (; i < n; ++i) {
    const u8 b = p[i];
    if (pending) {
      dst[w++] = static_cast<u8>(b ^ hdlc::kXor);
      pending = 0;
    } else if (b == hdlc::kEscape) {
      pending = 1;
    } else {
      dst[w++] = b;
    }
  }
  w_out = w;
  return pending == 0;
}

#endif  // P5_ESCAPE_SIMD

EscapeTier parse_tier(const char* name, EscapeTier fallback) {
  if (std::strcmp(name, "scalar") == 0) return EscapeTier::kScalar;
  if (std::strcmp(name, "swar") == 0) return EscapeTier::kSwar;
  if (std::strcmp(name, "sse2") == 0) return EscapeTier::kSse2;
  if (std::strcmp(name, "ssse3") == 0) return EscapeTier::kSsse3;
  if (std::strcmp(name, "avx2") == 0) return EscapeTier::kAvx2;
  return fallback;
}

}  // namespace

const char* to_string(EscapeTier tier) {
  switch (tier) {
    case EscapeTier::kScalar: return "scalar";
    case EscapeTier::kSwar: return "swar";
    case EscapeTier::kSse2: return "sse2";
    case EscapeTier::kSsse3: return "ssse3";
    case EscapeTier::kAvx2: return "avx2";
  }
  return "?";
}

EscapeTier detected_tier() {
#if P5_ESCAPE_SIMD
  static const EscapeTier tier = [] {
    if (__builtin_cpu_supports("avx2")) return EscapeTier::kAvx2;
    if (__builtin_cpu_supports("ssse3")) return EscapeTier::kSsse3;
    return EscapeTier::kSse2;  // x86-64 baseline
  }();
  return tier;
#elif defined(P5_FORCE_SCALAR)
  return EscapeTier::kScalar;
#else
  return EscapeTier::kSwar;
#endif
}

EscapeTier best_tier() {
  static const EscapeTier tier = [] {
    EscapeTier t = detected_tier();
    if (const char* env = std::getenv("P5_ESCAPE_TIER")) {
      const EscapeTier wanted = parse_tier(env, t);
      if (static_cast<u8>(wanted) < static_cast<u8>(t)) t = wanted;
    }
    return t;
  }();
  return tier;
}

std::vector<EscapeTier> available_tiers() {
  std::vector<EscapeTier> tiers;
  for (u8 t = 0; t <= static_cast<u8>(detected_tier()); ++t)
    tiers.push_back(static_cast<EscapeTier>(t));
  return tiers;
}

EscapeEngine::EscapeEngine(hdlc::Accm accm, EscapeTier tier) : accm_(accm) {
  tier_ = std::min(tier, detected_tier(),
                   [](EscapeTier a, EscapeTier b) { return static_cast<u8>(a) < static_cast<u8>(b); });
  for (unsigned b = 0; b < 256; ++b)
    tables_.cls[b] = accm.must_escape(static_cast<u8>(b)) ? 1 : 0;
  for (unsigned i = 0; i < 16; ++i) {
    tables_.accm_lo[i] = ((accm.map() >> i) & 1u) ? 0xFF : 0x00;
    tables_.accm_hi[i] = ((accm.map() >> (16 + i)) & 1u) ? 0xFF : 0x00;
  }
  tables_.has_controls = accm.map() != 0;
}

void EscapeEngine::stuff_append(Bytes& out, BytesView data) const {
  const std::size_t n = data.size();
  if (n < kSmallFrameCutoff || tier_ == EscapeTier::kScalar) {
    ++counters_.scalar_calls;
    stuff_scalar(out, data, tables_);
    return;
  }
  if (tier_ == EscapeTier::kSwar) {
    ++counters_.swar_calls;
    fastpath::stuff_append(out, data, accm_);
    return;
  }
#if P5_ESCAPE_SIMD
  ++counters_.simd_calls;
  const std::size_t base = out.size();
  out.resize(base + 2 * n + kStuffSlack);
  u8* dst = out.data() + base;
  std::size_t w = 0;
  switch (tier_) {
    case EscapeTier::kAvx2: w = stuff_avx2(dst, data.data(), n, tables_, counters_); break;
    case EscapeTier::kSsse3: w = stuff_ssse3(dst, data.data(), n, tables_, counters_); break;
    default: w = stuff_sse2(dst, data.data(), n, tables_, counters_); break;
  }
  out.resize(base + w);
#else
  // tier_ is clamped to detected_tier(), so SIMD tiers are unreachable here.
  ++counters_.swar_calls;
  fastpath::stuff_append(out, data, accm_);
#endif
}

bool EscapeEngine::destuff_append(Bytes& out, BytesView data) const {
  const std::size_t n = data.size();
  if (n < kSmallFrameCutoff || tier_ == EscapeTier::kScalar) {
    ++counters_.scalar_calls;
    return destuff_scalar(out, data);
  }
  if (tier_ == EscapeTier::kSwar) {
    ++counters_.swar_calls;
    return fastpath::destuff_append(out, data);
  }
#if P5_ESCAPE_SIMD
  ++counters_.simd_calls;
  const std::size_t base = out.size();
  out.resize(base + n + kStuffSlack);
  u8* dst = out.data() + base;
  std::size_t w = 0;
  bool ok = false;
  switch (tier_) {
    case EscapeTier::kAvx2: ok = destuff_avx2(dst, data.data(), n, w, counters_); break;
    case EscapeTier::kSsse3: ok = destuff_ssse3(dst, data.data(), n, w, counters_); break;
    default: ok = destuff_sse2(dst, data.data(), n, w, counters_); break;
  }
  out.resize(base + w);
  return ok;
#else
  ++counters_.swar_calls;
  return fastpath::destuff_append(out, data);
#endif
}

u32 EscapeEngine::stuff_crc_append(Bytes& out, BytesView data, const SliceCrc& crc,
                                   u32 state) const {
  const std::size_t n = data.size();
  if (n < kSmallFrameCutoff || tier_ == EscapeTier::kScalar) {
    ++counters_.scalar_calls;
    return stuff_crc_scalar(out, data, tables_, crc, state);
  }
  if (tier_ == EscapeTier::kSwar) {
    ++counters_.swar_calls;
    return fastpath::stuff_crc_append(out, data, accm_, crc, state);
  }
  // SIMD tiers: two vector passes (slicing-by-8 FCS, then stuff) — the FCS
  // covers the *unstuffed* octets, so the passes are independent and each
  // runs at its full word-parallel rate.
  state = crc.update(state, data);
  stuff_append(out, data);
  return state;
}

std::size_t EscapeEngine::count_escapes(BytesView data) const {
  return fastpath::count_escapes(data, accm_);
}

}  // namespace p5::fastpath
