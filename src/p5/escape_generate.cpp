#include "p5/escape_generate.hpp"

#include "common/check.hpp"

namespace p5::core {

EscapeGenerate::EscapeGenerate(std::string name, unsigned lanes, rtl::Fifo<rtl::Word>& in,
                               rtl::Fifo<rtl::Word>& out, hdlc::Accm accm)
    : rtl::Module(std::move(name)), lanes_(lanes), in_(in), out_(out), accm_(accm) {
  P5_EXPECTS(lanes >= 1 && lanes <= rtl::Word::kMaxLanes);
}

void EscapeGenerate::eval() {
  ++stats_.cycles;
  const std::size_t capacity = queue_capacity();

  // Start from current state; stage mutations into the *_next shadows.
  s1_next_ = s1_;
  s2_next_ = s2_;
  queue_next_ = queue_;
  queue_sof_next_ = queue_sof_;
  draining_next_ = draining_eof_;

  // ---- S4: emit from the resynchronisation queue ----
  bool emitted = false;
  const bool want_full = queue_.size() >= lanes_;
  const bool want_drain = draining_eof_ && !queue_.empty();
  if ((want_full || want_drain) && out_.can_push()) {
    rtl::Word w;
    const std::size_t n = std::min<std::size_t>(lanes_, queue_next_.size());
    for (std::size_t i = 0; i < n; ++i) {
      w.push(queue_next_.front());
      queue_next_.pop_front();
    }
    w.sof = queue_sof_;
    queue_sof_next_ = false;
    if (draining_eof_ && queue_next_.empty()) {
      w.eof = true;
      draining_next_ = false;
    }
    out_.push(w);
    emitted = true;
    stats_.busy_cycles++;
    stats_.bytes += w.count();
  } else if (want_full || want_drain) {
    ++backpressure_cycles_;  // downstream full
    ++stats_.stall_cycles;
  } else if (!s2_.valid && !s1_.valid && queue_.empty()) {
    ++stats_.starve_cycles;
  }

  // ---- S3: merge the expanded S2 word into the queue ----
  bool accepted = false;
  if (s2_.valid && !draining_next_) {
    // Expansion (the slot crossbar's result): each must-escape octet becomes
    // the 0x7D marker followed by the octet with bit 5 complemented.
    Bytes expanded;
    expanded.reserve(2 * lanes_);
    for (std::size_t i = 0; i < s2_.word.count(); ++i) {
      const u8 octet = s2_.word.lane(i);
      if (accm_.must_escape(octet)) {
        expanded.push_back(hdlc::kEscape);
        expanded.push_back(octet ^ hdlc::kXor);
      } else {
        expanded.push_back(octet);
      }
    }

    if (queue_next_.size() + expanded.size() <= capacity) {
      if (s2_.word.sof && queue_next_.empty()) queue_sof_next_ = true;
      for (const u8 octet : expanded) queue_next_.push_back(octet);
      escapes_ += expanded.size() - s2_.word.count();
      if (s2_.word.eof) draining_next_ = true;
      accepted = true;
    } else {
      ++backpressure_cycles_;  // resync buffer full: stall upstream
    }
  }

  // ---- handshake chain: S2 <- S1 <- input channel ----
  const bool s2_can_load = !s2_.valid || accepted;
  if (s2_can_load) {
    if (s1_.valid) {
      s2_next_ = s1_;  // (classification flags are recomputed from the word)
      s1_next_.valid = false;
    } else if (accepted) {
      s2_next_.valid = false;
    }
  }
  const bool s1_can_load = !s1_next_.valid;
  if (s1_can_load && in_.can_pop()) {
    s1_next_.word = in_.pop();
    s1_next_.valid = true;
  }

  (void)emitted;
}

void EscapeGenerate::commit() {
  s1_ = s1_next_;
  s2_ = s2_next_;
  queue_ = std::move(queue_next_);
  queue_sof_ = queue_sof_next_;
  draining_eof_ = draining_next_;
  peak_occ_ = std::max(peak_occ_, queue_.size());
}

}  // namespace p5::core
