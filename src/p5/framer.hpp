// Flag framing at datapath width.
//
//  * FlagInserter (TX tail): wraps each stuffed frame in opening/closing
//    flags and keeps the line busy with inter-frame flag fill — the PPP over
//    SONET octet stream is continuous (RFC 1619). Because flags may force
//    frame content across word boundaries, this is another instance of the
//    byte-sorting problem on wide datapaths.
//
//  * FlagDelineator (RX head): hunts for flags in any lane, strips them,
//    re-aligns frame content to lane 0 and tags SOF/EOF — including
//    back-to-back frames separated by a single flag, runt fragments and
//    frames aborted with 0x7D-0x7E.
#pragma once

#include <deque>

#include "common/types.hpp"
#include "rtl/fifo.hpp"
#include "rtl/module.hpp"
#include "rtl/stats.hpp"
#include "rtl/word.hpp"

namespace p5::core {

class FlagInserter final : public rtl::Module {
 public:
  FlagInserter(std::string name, unsigned lanes, rtl::Fifo<rtl::Word>& in,
               rtl::Fifo<rtl::Word>& out);

  void eval() override;
  void commit() override;

  [[nodiscard]] u64 fill_octets() const { return fill_octets_; }
  [[nodiscard]] u64 frames() const { return frames_; }

 private:
  unsigned lanes_;
  rtl::Fifo<rtl::Word>& in_;
  rtl::Fifo<rtl::Word>& out_;

  std::deque<u8> staging_;
  bool open_frame_ = false;  ///< frame content staged but not yet closed

  std::deque<u8> staging_next_;
  bool open_frame_next_ = false;

  u64 fill_octets_ = 0;
  u64 frames_ = 0;
};

struct DelineatorCounters {
  u64 frames = 0;
  u64 aborts = 0;
  u64 runts = 0;
};

class FlagDelineator final : public rtl::Module {
 public:
  FlagDelineator(std::string name, unsigned lanes, rtl::Fifo<rtl::Word>& in,
                 rtl::Fifo<rtl::Word>& out, std::size_t min_frame = 4);

  void eval() override;
  void commit() override;

  [[nodiscard]] const DelineatorCounters& counters() const { return counters_; }

 private:
  /// One octet of frame content with its boundary markers: SOF tags the
  /// first octet of a frame, EOF the last (with abort set for frames ended
  /// by a transmitter abort or too short to be real).
  struct Entry {
    u8 octet = 0;
    bool sof = false;
    bool eof = false;
    bool abort = false;
  };

  unsigned lanes_;
  std::size_t min_frame_;
  rtl::Fifo<rtl::Word>& in_;
  rtl::Fifo<rtl::Word>& out_;

  std::deque<Entry> queue_;
  bool in_frame_ = false;   ///< saw an opening flag
  std::size_t frame_len_ = 0;
  u8 last_octet_ = 0;

  std::deque<Entry> queue_next_;
  bool in_frame_next_ = false;
  std::size_t frame_len_next_ = 0;
  u8 last_octet_next_ = 0;

  DelineatorCounters counters_;
};

}  // namespace p5::core
