// SessionBroker under mass churn: the ledger-closure contract
// (negotiated + failed + abandoned == started) pinned under a 1000-session
// CHAP negotiation storm over a faulty wire, half-open floods against the
// admission valve, wrong-secret/unknown-identity mixes, renegotiation
// flaps, option-rejection fuzzing, shard-count invariance (the TSan leg),
// and a device-tier leg where packet-mode PPP endpoints negotiate through
// real SONET endpoints frame by frame.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "p5/endpoint.hpp"
#include "ppp/broker.hpp"
#include "ppp/endpoint.hpp"
#include "ppp/protocols.hpp"
#include "ppp/vj.hpp"
#include "sonet/spe.hpp"
#include "testing/fault.hpp"
#include "testing/property.hpp"

namespace p5::ppp::broker {
namespace {

// ---- direct SessionBroker API ----

/// One hand-driven subscriber against a broker (store-and-forward queues).
struct DirectSession {
  SessionBroker broker;
  std::unique_ptr<PppEndpoint> client;
  std::vector<Bytes> to_client, to_server;
  u64 id = 0;

  explicit DirectSession(BrokerConfig bc, const std::string& identity = "alice",
                         const std::string& secret = "pw") : broker(std::move(bc)) {
    const auto sid =
        broker.open_session([this](BytesView b) { to_client.emplace_back(b.begin(), b.end()); });
    EXPECT_TRUE(sid.has_value());
    id = sid.value_or(0);
    PppEndpoint::Config ec;
    ec.ipcp.local_address = 0;  // ask the BRAS for an address
    ec.auth.identity = identity;
    ec.auth.secret = secret;
    client = std::make_unique<PppEndpoint>(
        "cli", ec, [this](BytesView b) { to_server.emplace_back(b.begin(), b.end()); });
    client->open();
    client->lower_up();
  }
  void run(int ticks = 60) {
    for (int t = 0; t < ticks; ++t) {
      pump();
      broker.tick();
      client->tick();
    }
    pump();
  }
  void pump() {
    for (int round = 0; round < 100 && (!to_client.empty() || !to_server.empty()); ++round) {
      std::vector<Bytes> qc, qs;
      qc.swap(to_client);
      qs.swap(to_server);
      for (const Bytes& b : qs) broker.wire_rx(id, b);
      for (const Bytes& b : qc) client->wire_rx(b);
    }
  }
};

BrokerConfig chap_broker() {
  BrokerConfig bc;
  bc.accounts = make_account_table({{"alice", "pw"}});
  return bc;
}

TEST(Broker, SingleSessionNegotiatesChapAndAssignsAddress) {
  DirectSession s(chap_broker());
  s.run();
  EXPECT_EQ(s.broker.outcome(s.id), Outcome::kNegotiated);
  EXPECT_TRUE(s.broker.ledger().closed());
  EXPECT_EQ(s.broker.ledger().negotiated, 1u);
  EXPECT_EQ(s.broker.endpoint(s.id)->authenticated_peer(), "alice");
  // The BRAS handed out address_base + id.
  EXPECT_TRUE(s.client->ip_ready());
  EXPECT_EQ(s.client->ipcp().local_address(), s.broker.endpoint(s.id)->ipcp().peer_address());
  EXPECT_TRUE(s.broker.quiescent());
}

TEST(Broker, WrongSecretFailsWithAuthAttribution) {
  DirectSession s(chap_broker(), "alice", "WRONG");
  s.run();
  EXPECT_EQ(s.broker.outcome(s.id), Outcome::kFailed);
  EXPECT_EQ(s.broker.ledger().failed, 1u);
  EXPECT_EQ(s.broker.ledger().auth_failures, 1u);
  EXPECT_TRUE(s.broker.ledger().closed());
  EXPECT_FALSE(s.client->ip_ready());
}

TEST(Broker, HalfOpenCapRefusesAdmission) {
  BrokerConfig bc = chap_broker();
  bc.max_half_open = 2;
  SessionBroker broker(bc);
  const auto sink = [](BytesView) {};
  EXPECT_TRUE(broker.open_session(sink).has_value());
  EXPECT_TRUE(broker.open_session(sink).has_value());
  EXPECT_FALSE(broker.open_session(sink).has_value());  // valve closed
  EXPECT_EQ(broker.ledger().started, 2u);
  EXPECT_EQ(broker.ledger().rejected_half_open, 1u);
  EXPECT_EQ(broker.pending_sessions(), 2u);
}

TEST(Broker, SilentPeerAbandonedAtDeadline) {
  BrokerConfig bc = chap_broker();
  bc.session_deadline_ticks = 12;
  SessionBroker broker(bc);
  const u64 id = *broker.open_session([](BytesView) {});
  for (int t = 0; t < 12; ++t) broker.tick();
  EXPECT_EQ(broker.outcome(id), Outcome::kAbandoned);
  EXPECT_EQ(broker.ledger().abandoned, 1u);
  EXPECT_TRUE(broker.ledger().closed());
  EXPECT_TRUE(broker.quiescent());
}

TEST(Broker, SpeakingButNonConvergingPeerFailsAtDeadline) {
  BrokerConfig bc = chap_broker();
  bc.session_deadline_ticks = 12;
  SessionBroker broker(bc);
  std::vector<Bytes> to_client;
  const u64 id =
      *broker.open_session([&](BytesView b) { to_client.emplace_back(b.begin(), b.end()); });
  // A subscriber that speaks valid frames but never progresses: replay the
  // broker's own Configure-Requests back at it unanswered (it will keep
  // renegotiating, never open, and must classify as failed, not abandoned).
  for (int t = 0; t < 12; ++t) {
    for (const Bytes& b : to_client) broker.wire_rx(id, b);
    to_client.clear();
    broker.tick();
  }
  EXPECT_EQ(broker.outcome(id), Outcome::kFailed);
  EXPECT_TRUE(broker.ledger().closed());
}

TEST(Broker, CloseSessionSettlesPending) {
  SessionBroker broker(chap_broker());
  const u64 id = *broker.open_session([](BytesView) {});
  broker.close_session(id);
  EXPECT_EQ(broker.outcome(id), Outcome::kAbandoned);
  EXPECT_TRUE(broker.ledger().closed());
  EXPECT_TRUE(broker.quiescent());
}

TEST(Broker, AbandonPendingForcesClosure) {
  SessionBroker broker(chap_broker());
  for (int i = 0; i < 5; ++i) (void)broker.open_session([](BytesView) {});
  EXPECT_EQ(broker.pending_sessions(), 5u);
  broker.abandon_pending();
  EXPECT_TRUE(broker.quiescent());
  EXPECT_TRUE(broker.ledger().closed());
  EXPECT_EQ(broker.ledger().abandoned, 5u);
}

// ---- negotiation storms ----

/// Per-session FaultyLine taps, deterministically seeded by session id.
std::function<std::function<void(Bytes&)>(u64, bool)> faulty_taps(double ber, double trunc,
                                                                  u64 seed) {
  return [ber, trunc, seed](u64 session, bool server_to_client) -> std::function<void(Bytes&)> {
    testing::FaultSpec spec;
    spec.bit_error_rate = ber;
    spec.truncate_rate = trunc;
    spec.seed = seed ^ (session * 2 + (server_to_client ? 1 : 0)) * 0x9E3779B97F4A7C15ull;
    auto line = std::make_shared<testing::FaultyLine>(spec);
    return [line](Bytes& b) { (*line)(b); };
  };
}

TEST(BrokerStorm, ThousandSessionChapStormOverFaultyLine) {
  StormConfig cfg;
  cfg.sessions = 1000;
  cfg.admit_per_tick = 50;
  cfg.max_ticks = 600;
  cfg.seed = testing::resolved_seed(0x5709A1);
  // Mild but real line noise: a handful of sessions will need LCP/CHAP
  // retransmissions; the ledger must close regardless.
  cfg.make_tap = faulty_taps(2e-6, 2e-4, cfg.seed);
  const StormReport r = run_negotiation_storm(cfg);

  EXPECT_TRUE(r.ledger.closed()) << "started=" << r.ledger.started
                                 << " negotiated=" << r.ledger.negotiated
                                 << " failed=" << r.ledger.failed
                                 << " abandoned=" << r.ledger.abandoned;
  EXPECT_EQ(r.ledger.started, 1000u);
  // The noise is mild: the overwhelming majority must converge, over CHAP,
  // with VJ negotiated on every converged session (both sides request it).
  EXPECT_GE(r.ledger.negotiated, 950u);
  EXPECT_EQ(r.vj_sessions, r.ledger.negotiated);
  EXPECT_GE(r.clients_open, r.ledger.negotiated - r.ledger.renegotiations);
  EXPECT_LT(r.ticks, 600u);  // reached quiescence, not the bound
}

TEST(BrokerStorm, DeterministicPerSeed) {
  StormConfig cfg;
  cfg.sessions = 150;
  cfg.admit_per_tick = 25;
  cfg.seed = 42;
  cfg.bad_secret_fraction = 0.1;
  cfg.half_open_fraction = 0.1;
  cfg.broker.session_deadline_ticks = 60;
  cfg.make_tap = faulty_taps(1e-5, 5e-4, cfg.seed);
  const StormReport a = run_negotiation_storm(cfg);
  const StormReport b = run_negotiation_storm(cfg);
  EXPECT_EQ(a.ledger.started, b.ledger.started);
  EXPECT_EQ(a.ledger.negotiated, b.ledger.negotiated);
  EXPECT_EQ(a.ledger.failed, b.ledger.failed);
  EXPECT_EQ(a.ledger.abandoned, b.ledger.abandoned);
  EXPECT_EQ(a.ledger.auth_failures, b.ledger.auth_failures);
  EXPECT_EQ(a.clients_open, b.clients_open);
  EXPECT_EQ(a.vj_sessions, b.vj_sessions);

  // A different seed reshuffles fates (it is not a constant function).
  StormConfig other = cfg;
  other.seed = 43;
  const StormReport c = run_negotiation_storm(other);
  EXPECT_TRUE(c.ledger.closed());
}

TEST(BrokerStorm, ShardInvariantAcrossThreads) {
  // The TSan leg: 4 worker threads, outcomes identical to the single-thread
  // run because every per-session decision is keyed on the global id.
  StormConfig cfg;
  cfg.sessions = 200;
  cfg.admit_per_tick = 25;
  cfg.seed = 7;
  cfg.bad_secret_fraction = 0.15;
  cfg.flap_chance = 0.02;
  cfg.broker.session_deadline_ticks = 80;
  cfg.make_tap = faulty_taps(5e-6, 2e-4, cfg.seed);

  cfg.shards = 1;
  const StormReport solo = run_negotiation_storm(cfg);
  cfg.shards = 4;
  const StormReport sharded = run_negotiation_storm(cfg);

  EXPECT_TRUE(solo.ledger.closed());
  EXPECT_TRUE(sharded.ledger.closed());
  EXPECT_EQ(solo.ledger.started, sharded.ledger.started);
  EXPECT_EQ(solo.ledger.negotiated, sharded.ledger.negotiated);
  EXPECT_EQ(solo.ledger.failed, sharded.ledger.failed);
  EXPECT_EQ(solo.ledger.abandoned, sharded.ledger.abandoned);
  EXPECT_EQ(solo.ledger.auth_failures, sharded.ledger.auth_failures);
  EXPECT_EQ(solo.ledger.renegotiations, sharded.ledger.renegotiations);
  EXPECT_EQ(solo.clients_open, sharded.clients_open);
  EXPECT_EQ(solo.vj_sessions, sharded.vj_sessions);
}

TEST(BrokerStorm, HalfOpenFloodAgainstAdmissionValve) {
  StormConfig cfg;
  cfg.sessions = 300;
  cfg.admit_per_tick = 60;
  cfg.seed = 11;
  cfg.half_open_fraction = 0.6;
  cfg.broker.max_half_open = 40;
  cfg.broker.session_deadline_ticks = 50;
  cfg.max_ticks = 400;
  const StormReport r = run_negotiation_storm(cfg);

  EXPECT_TRUE(r.ledger.closed());
  // The valve had to refuse some arrivals while half-open probes aged out...
  EXPECT_GT(r.ledger.rejected_half_open, 0u);
  EXPECT_EQ(r.ledger.started + r.ledger.rejected_half_open, 300u);
  // ...and every admitted half-open probe was classified abandoned.
  EXPECT_GT(r.ledger.abandoned, 0u);
  EXPECT_GT(r.ledger.negotiated, 0u);  // real subscribers still got through
}

TEST(BrokerStorm, CredentialMixAttributedExactly) {
  StormConfig cfg;
  cfg.sessions = 200;
  cfg.admit_per_tick = 40;
  cfg.seed = 13;
  cfg.bad_secret_fraction = 0.25;
  cfg.unknown_id_fraction = 0.25;
  const StormReport r = run_negotiation_storm(cfg);

  EXPECT_TRUE(r.ledger.closed());
  EXPECT_EQ(r.ledger.started, 200u);
  EXPECT_GT(r.ledger.auth_failures, 0u);
  // Every failure in this storm is an auth failure (clean wire, no fuzz),
  // and both sides agree on who failed.
  EXPECT_EQ(r.ledger.failed, r.ledger.auth_failures);
  EXPECT_EQ(r.client_auth_failures, r.ledger.auth_failures);
  EXPECT_EQ(r.ledger.negotiated + r.ledger.failed, 200u);
}

TEST(BrokerStorm, RenegotiationFlapsKeepLedgerClosed) {
  StormConfig cfg;
  cfg.sessions = 120;
  cfg.admit_per_tick = 30;
  cfg.seed = 17;
  cfg.flap_chance = 0.10;
  cfg.max_flaps_per_session = 2;
  const StormReport r = run_negotiation_storm(cfg);

  EXPECT_TRUE(r.ledger.closed());
  EXPECT_EQ(r.ledger.started, 120u);
  EXPECT_GT(r.ledger.renegotiations, 0u);
  // A flap re-opens an already-negotiated session: fates stay per-session.
  EXPECT_EQ(r.ledger.negotiated, 120u);
}

TEST(BrokerStorm, OptionRejectionFuzzNeverBreaksClosure) {
  // Clients with randomized LCP/IPCP appetites — VJ on/off with odd slot
  // counts, PAP/CHAP refusals, ACFC/PFC, LQM, tiny MRUs. Whatever mix of
  // Ack/Nak/Reject the negotiations take, every session must settle.
  testing::PropertyOptions opt;
  opt.cases = testing::resolved_cases(6);
  opt.seed = testing::resolved_seed(0x0F72F522);
  const auto result = testing::check_property("broker-option-fuzz", opt, [](testing::CaseContext& c) {
    StormConfig cfg;
    cfg.sessions = 40;
    cfg.admit_per_tick = 20;
    cfg.seed = c.rng.next();
    cfg.broker.session_deadline_ticks = 120;
    const u64 fuzz_seed = c.rng.next();
    cfg.client_config_hook = [fuzz_seed](u64 session, LcpConfig& lcp, IpcpConfig& ipcp) {
      Xoshiro256 rng(fuzz_seed ^ (session * 0x9E3779B97F4A7C15ull));
      lcp.allow_chap = rng.chance(0.8);
      lcp.allow_pap = rng.chance(0.5);
      lcp.request_pfc = rng.chance(0.5);
      lcp.request_acfc = rng.chance(0.5);
      lcp.request_fcs32 = rng.chance(0.5);
      if (rng.chance(0.3)) lcp.request_lqr_period = 1 + rng.below(8);
      if (rng.chance(0.3)) lcp.mru = static_cast<u16>(128 + rng.below(3000));
      ipcp.request_vj = rng.chance(0.5);
      ipcp.accept_vj = rng.chance(0.7);
      ipcp.vj_max_slot_id = static_cast<u8>(rng.below(256));
      ipcp.vj_comp_slot_id = rng.chance(0.5);
    };
    const StormReport r = run_negotiation_storm(cfg);
    if (!r.ledger.closed()) {
      c.fail("ledger not closed: started=" + std::to_string(r.ledger.started) +
             " negotiated=" + std::to_string(r.ledger.negotiated) +
             " failed=" + std::to_string(r.ledger.failed) +
             " abandoned=" + std::to_string(r.ledger.abandoned));
      return;
    }
    if (r.ledger.started != cfg.sessions) {
      c.fail("admission lost sessions: " + std::to_string(r.ledger.started));
    }
  });
  EXPECT_TRUE(result.ok) << result.message;
}

// ---- device-tier leg: packet-mode PPP over real SONET endpoints ----

/// A PPP session terminated on core::SonetEndpoint devices: the endpoints
/// own framing/FCS (packet mode), PPP rides submit_datagram/RxDelivery, and
/// the wire is the scrambled SONET byte stream moved whole frames at a time.
struct DeviceLink {
  std::unique_ptr<core::SonetEndpoint> dev_a, dev_b;
  std::unique_ptr<PppEndpoint> ppp_a, ppp_b;
  std::vector<Bytes> a_rx, b_rx;

  DeviceLink(core::DeviceTier tier, PppEndpoint::Config ca, PppEndpoint::Config cb)
      : dev_a(core::make_sonet_endpoint(tier, {}, sonet::kSts3c)),
        dev_b(core::make_sonet_endpoint(tier, {}, sonet::kSts3c)) {
    ppp_a = std::make_unique<PppEndpoint>("A", ca, [this](u16 proto, BytesView info) {
      ASSERT_TRUE(dev_a->submit_datagram(proto, Bytes(info.begin(), info.end())));
    });
    ppp_b = std::make_unique<PppEndpoint>("B", cb, [this](u16 proto, BytesView info) {
      ASSERT_TRUE(dev_b->submit_datagram(proto, Bytes(info.begin(), info.end())));
    });
    dev_a->set_rx_sink(
        [this](core::RxDelivery d) { ppp_a->deliver_packet(d.protocol, d.payload); });
    dev_b->set_rx_sink(
        [this](core::RxDelivery d) { ppp_b->deliver_packet(d.protocol, d.payload); });
    ppp_a->set_ip_sink([this](BytesView d) { a_rx.emplace_back(d.begin(), d.end()); });
    ppp_b->set_ip_sink([this](BytesView d) { b_rx.emplace_back(d.begin(), d.end()); });
  }
  /// Move one SONET frame each way and run the protocol timers.
  void exchange() {
    dev_b->push_line(dev_a->pull_frame());
    dev_a->push_line(dev_b->pull_frame());
    dev_a->drain_rx();
    dev_b->drain_rx();
    ppp_a->tick();
    ppp_b->tick();
  }
  void bring_up() {
    ppp_a->open();
    ppp_b->open();
    ppp_a->lower_up();
    ppp_b->lower_up();
    for (int i = 0; i < 400 && !(ppp_a->ip_ready() && ppp_b->ip_ready()); ++i) exchange();
  }
};

void device_session_end_to_end(core::DeviceTier tier) {
  PppEndpoint::Config ca, cb;
  ca.ipcp.local_address = 0x0A000001;
  ca.lcp.require_auth = AuthProto::kChap;
  ca.auth.policy.lookup = [](const std::string& id) -> std::optional<std::string> {
    if (id == "subscriber") return "s3cret";
    return std::nullopt;
  };
  ca.ipcp.request_vj = true;
  cb.ipcp.local_address = 0x0A000002;
  cb.auth.identity = "subscriber";
  cb.auth.secret = "s3cret";
  cb.ipcp.request_vj = true;

  DeviceLink link(tier, ca, cb);
  link.bring_up();
  ASSERT_TRUE(link.ppp_a->ip_ready());
  ASSERT_TRUE(link.ppp_b->ip_ready());
  EXPECT_EQ(link.ppp_a->auth_result(), AuthResult::kSuccess);
  EXPECT_EQ(link.ppp_a->authenticated_peer(), "subscriber");

  // Compressed TCP over the negotiated session, through real SONET frames.
  vj::TcpFlowGen gen(2, 99, 64);
  std::vector<Bytes> sent;
  for (int i = 0; i < 40; ++i) {
    sent.push_back(gen.next());
    ASSERT_TRUE(link.ppp_b->send_ip(sent.back()));
    link.exchange();
  }
  for (int i = 0; i < 20; ++i) link.exchange();
  ASSERT_EQ(link.a_rx.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(link.a_rx[i], sent[i]) << i;
  ASSERT_NE(link.ppp_b->vj_compressor(), nullptr);
  EXPECT_GT(link.ppp_b->vj_compressor()->stats().compressed, 0u);
}

TEST(BrokerDevice, ChapVjSessionOverFastTier) {
  device_session_end_to_end(core::DeviceTier::kFast);
}

TEST(BrokerDevice, ChapVjSessionOverCycleTier) {
  device_session_end_to_end(core::DeviceTier::kCycle);
}

}  // namespace
}  // namespace p5::ppp::broker
