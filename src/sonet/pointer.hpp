// SONET/SDH payload pointer processing (GR-253 §3.5 / G.707 §8).
//
// The SPE framer in sonet/spe.hpp holds the H1/H2 pointer at zero (a
// frame-locked payload, which is how a single-chip P5+framer behaves). Real
// networks, however, run each node on its own clock: the payload envelope
// slips against the transport frame, and the pointer mechanism absorbs the
// slip — one octet per event — via positive/negative justification:
//
//   * transmitter fast (payload starving): POSITIVE justification — the
//     octet after H3 is a stuff byte, the pointer increments, I-bits invert
//     in the event frame;
//   * transmitter slow (payload backlog): NEGATIVE justification — H3
//     itself carries a payload octet, the pointer decrements, D-bits invert;
//   * a path re-arrangement sets the NDF (New Data Flag) and the pointer
//     jumps immediately.
//
// This module implements the mechanism over a simplified transport frame
// (H1/H2/H3 + an SPE-sized capacity area) so it is testable end to end:
// PointerGenerator emits frames from a payload source under a programmable
// clock offset (ppm); PointerInterpreter recovers the exact payload stream,
// tracking pointer votes (majority-of-inverted-bits), NDF jumps, and the
// eight-consecutive-invalid Loss-Of-Pointer defect.
#pragma once

#include <functional>
#include <optional>

#include "common/types.hpp"

namespace p5::sonet {

/// Pointer word codec. Layout (16 bits): N N N N x x I D I D I D I D I D
/// — NDF nibble (0110 normal, 1001 new-data), two unused bits, then the
/// 10-bit value with Increment bits in odd positions and Decrement bits in
/// even positions (transmission order).
struct PointerWord {
  u16 value = 0;   ///< 0 .. kMaxPointer
  bool ndf = false;

  [[nodiscard]] u16 encode(bool invert_i = false, bool invert_d = false) const;
  /// Strict decode: returns nullopt unless the NDF nibble is exactly normal
  /// or new-data and the value is in range.
  [[nodiscard]] static std::optional<PointerWord> decode(u16 raw);
  /// Lenient decode of the value bits with I/D inversion detection against
  /// an expected value; used by the interpreter's majority vote.
  struct Vote {
    unsigned i_inverted = 0;  ///< how many of the 5 I bits differ
    unsigned d_inverted = 0;  ///< how many of the 5 D bits differ
  };
  [[nodiscard]] static Vote vote_against(u16 raw, u16 expected_value);
};

inline constexpr u16 kMaxPointer = 782;

/// One simplified transport frame: the pointer bytes plus the payload
/// capacity area the SPE floats inside.
struct PointeredFrame {
  u16 h1h2 = 0;  ///< pointer word
  u8 h3 = 0;     ///< negative-justification opportunity octet
  Bytes capacity;  ///< fixed-size payload area
};

class PointerGenerator {
 public:
  /// `capacity` octets of payload area per frame. `offset_ppm` models the
  /// payload clock relative to the transport clock: positive = payload slow
  /// (positive justifications), negative = payload fast (negative
  /// justifications). One justification absorbs one octet.
  PointerGenerator(std::size_t capacity, double offset_ppm,
                   std::function<Bytes(std::size_t)> payload_source);

  [[nodiscard]] PointeredFrame next_frame();

  /// Force a pointer jump with NDF on the next frame (path re-arrangement).
  void new_data_jump(u16 new_pointer);

  [[nodiscard]] u16 pointer() const { return pointer_; }
  [[nodiscard]] u64 positive_justifications() const { return pos_just_; }
  [[nodiscard]] u64 negative_justifications() const { return neg_just_; }

 private:
  std::size_t capacity_;
  double offset_ppm_;
  std::function<Bytes(std::size_t)> source_;
  u16 pointer_ = 0;
  double drift_accum_ = 0.0;  ///< fractional octets of accumulated slip
  std::optional<u16> pending_ndf_;
  unsigned cooldown_ = 0;  ///< >= 3 frames between justification events
  u64 pos_just_ = 0, neg_just_ = 0;
};

struct PointerStats {
  u64 frames = 0;
  u64 positive_justifications = 0;
  u64 negative_justifications = 0;
  u64 ndf_jumps = 0;
  u64 invalid_pointers = 0;
  u64 lop_events = 0;  ///< Loss of Pointer declared
};

class PointerInterpreter {
 public:
  /// `payload_sink` receives the recovered SPE octet stream.
  PointerInterpreter(std::size_t capacity, std::function<void(BytesView)> payload_sink);

  void push(const PointeredFrame& frame);

  [[nodiscard]] u16 pointer() const { return pointer_; }
  [[nodiscard]] bool in_lop() const { return lop_; }
  [[nodiscard]] const PointerStats& stats() const { return stats_; }

 private:
  std::size_t capacity_;
  std::function<void(BytesView)> sink_;
  u16 pointer_ = 0;
  bool have_pointer_ = false;
  bool lop_ = false;
  bool skip_next_octet_ = false;  ///< positive justification in this frame
  unsigned consecutive_invalid_ = 0;
  std::optional<u16> candidate_;
  unsigned candidate_count_ = 0;
  PointerStats stats_;
};

}  // namespace p5::sonet
