#include "netlist/circuits/oam_circuit.hpp"

#include <string>

#include "netlist/circuits/sorter_common.hpp"

namespace p5::netlist::circuits {

Netlist make_oam_circuit(unsigned bus_bits, unsigned num_registers, unsigned num_irqs) {
  P5_EXPECTS(bus_bits == 8 || bus_bits == 16 || bus_bits == 32);
  Netlist nl("oam_" + std::to_string(bus_bits));
  Builder b(nl);

  const std::size_t addr_bits = bits_for(num_registers - 1);
  const Bus wdata = b.input_bus("wd", bus_bits);
  const Bus addr = b.input_bus("a", addr_bits);
  const NodeId we = nl.input("we");

  // Register file with write decode.
  std::vector<Bus> regs;
  std::vector<NodeId> selects;
  for (unsigned r = 0; r < num_registers; ++r) {
    const Bus reg = b.dff_bus(bus_bits);
    const NodeId sel = b.eq_const(addr, r);
    b.wire_dff_bus(reg, b.mux_bus(nl.and_(we, sel), reg, wdata));
    regs.push_back(reg);
    selects.push_back(sel);
  }

  // Read multiplexer.
  const Bus rdata = b.onehot_mux(selects, regs);
  b.output_bus(rdata, "rd");

  // Interrupt controller: level-latched pending bits, mask register,
  // write-one-to-clear via the bus.
  const Bus irq_in = b.input_bus("irq", num_irqs);
  const Bus mask = b.dff_bus(num_irqs);
  const NodeId mask_we = nl.input("mask_we");
  b.wire_dff_bus(mask, b.mux_bus(mask_we, mask, Bus(wdata.begin(), wdata.begin() + num_irqs)));

  const NodeId ack = nl.input("irq_ack");
  Bus pending_next;
  const Bus pending = b.dff_bus(num_irqs);
  for (unsigned i = 0; i < num_irqs; ++i) {
    // pending' = (pending & !clear) | irq_in
    const NodeId clear = nl.and_(ack, wdata[i]);
    pending_next.push_back(nl.or_(nl.and_(pending[i], nl.not_(clear)), irq_in[i]));
  }
  b.wire_dff_bus(pending, pending_next);

  Bus active;
  for (unsigned i = 0; i < num_irqs; ++i) active.push_back(nl.and_(pending[i], mask[i]));
  nl.output(b.reduce_or(active), "irq");
  b.output_bus(pending, "pending");
  return nl;
}

}  // namespace p5::netlist::circuits
