// p5_tunnel — one end of a PPP-over-SONET link as a real networked process.
//
// Run a pair (two terminals, or two machines on a LAN):
//
//   ./p5_tunnel --listen 9500 --echo                      # terminal 1: reflector
//   ./p5_tunnel --connect 127.0.0.1:9500 --frames 100000  # terminal 2: sender
//
// The sender submits IMIX datagrams to its local P5, whose scrambled STS-3c
// byte stream rides the socket; the far P5 recovers alignment, descrambles,
// delineates, checks every FCS, and (with --echo) sends each datagram back.
// The sender FNV-1a-hashes every payload out and back, so the final line
// proves ≥100k frames crossed the wire byte-exact with zero CRC errors.
//
// --tier picks the device model driving each lane: `fast` (default) is the
// whole-frame batch datapath, `cycle` the cycle-accurate pipeline — same
// wire format, orders of magnitude apart in throughput. P5_DEVICE_TIER
// overrides the default; an explicit --tier flag wins over the env.
//
// --channels N runs N independent tunnels (ports port..port+N-1), one
// endpoint each — the line-card picture with the fabric replaced by
// sockets. --udp swaps TCP for one-chunk-per-datagram UDP; losses then show
// up in the stats dump as resyncs/frames_bad, never as corrupt deliveries.
// SIGINT drains gracefully: the send queue flushes before the goodbye.
//
// Usage:
//   p5_tunnel (--listen PORT | --connect HOST:PORT)
//             [--tier cycle|fast] [--channels N] [--frames N | --duration SEC]
//             [--udp] [--echo] [--stats-ms MS] [--seed N] [--pcap-out PATH]
//
// --frames bounds the run by work, --duration by wall clock: after SEC
// seconds the sender stops submitting and drains, so soak runs against a
// live server don't need a frame-count guess. --pcap-out records every
// delivered datagram (all channels) as a PPP-linktype pcap — ff 03 proto
// payload per record — and prints the tap's exact ledger on exit.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/capture/tap.hpp"
#include "net/traffic.hpp"
#include "p5/endpoint.hpp"
#include "transport/event_loop.hpp"
#include "transport/tunnel.hpp"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) { g_interrupted = 1; }

p5::u64 fnv1a(p5::BytesView bytes) {
  p5::u64 h = 1469598103934665603ull;
  for (const p5::u8 b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

struct Options {
  bool listen = false;
  bool udp = false;
  bool echo = false;
  std::string host = "127.0.0.1";
  p5::u16 port = 0;
  unsigned channels = 1;
  p5::u64 frames = 0;    // 0 on the listen side: just carry traffic
  p5::u64 duration_s = 0;  // wall-clock bound; 0 = unbounded
  p5::u64 stats_ms = 1000;
  p5::u64 seed = 7;
  std::string pcap_out;  // record delivered datagrams (all channels) here
  // Default-selection point: fast unless P5_DEVICE_TIER says otherwise.
  // An explicit --tier flag overwrites this (and so beats the env).
  p5::core::DeviceTier tier =
      p5::core::resolve_device_tier(p5::core::DeviceTier::kFast);
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--listen") == 0) {
      const char* v = need("--listen");
      if (!v) return false;
      opt.listen = true;
      opt.port = static_cast<p5::u16>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      const char* v = need("--connect");
      if (!v) return false;
      const auto addr = p5::transport::parse_addr(v);
      if (!addr) {
        std::fprintf(stderr, "error: bad address '%s'\n", v);
        return false;
      }
      opt.host = addr->host;
      opt.port = addr->port;
    } else if (std::strcmp(argv[i], "--tier") == 0) {
      const char* v = need("--tier");
      if (!v) return false;
      if (std::strcmp(v, "cycle") == 0) {
        opt.tier = p5::core::DeviceTier::kCycle;
      } else if (std::strcmp(v, "fast") == 0) {
        opt.tier = p5::core::DeviceTier::kFast;
      } else {
        std::fprintf(stderr, "error: --tier must be 'cycle' or 'fast', got '%s'\n", v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--channels") == 0) {
      const char* v = need("--channels");
      if (!v) return false;
      opt.channels = static_cast<unsigned>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--frames") == 0) {
      const char* v = need("--frames");
      if (!v) return false;
      opt.frames = static_cast<p5::u64>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      const char* v = need("--duration");
      if (!v) return false;
      opt.duration_s = static_cast<p5::u64>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--stats-ms") == 0) {
      const char* v = need("--stats-ms");
      if (!v) return false;
      opt.stats_ms = static_cast<p5::u64>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = need("--seed");
      if (!v) return false;
      opt.seed = static_cast<p5::u64>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--pcap-out") == 0) {
      const char* v = need("--pcap-out");
      if (!v) return false;
      opt.pcap_out = v;
    } else if (std::strcmp(argv[i], "--udp") == 0) {
      opt.udp = true;
    } else if (std::strcmp(argv[i], "--echo") == 0) {
      opt.echo = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return false;
    }
  }
  if (opt.port == 0 || opt.channels == 0) {
    std::fprintf(stderr,
                 "usage: p5_tunnel (--listen PORT | --connect HOST:PORT) [--tier cycle|fast]\n"
                 "                 [--channels N] [--frames N | --duration SEC] [--udp]\n"
                 "                 [--echo] [--stats-ms MS] [--seed N] [--pcap-out PATH]\n");
    return false;
  }
  return true;
}

/// One tributary: an endpoint, its tunnel, and the sender's bookkeeping.
struct Lane {
  std::unique_ptr<p5::core::SonetEndpoint> ep;
  std::unique_ptr<p5::transport::Tunnel> tun;
  p5::net::ImixGenerator gen;
  p5::u64 submitted = 0;
  p5::u64 hash_out = 0;  // FNV over everything sent, order-sensitive
  p5::u64 hash_in = 0;   // FNV over everything received back
  p5::u64 reaped = 0;
  p5::u64 reaped_bytes = 0;  // payload octets delivered, for the stats rate

  Lane(p5::transport::EventLoop& loop, const Options& opt, unsigned index)
      : ep(p5::core::make_sonet_endpoint(opt.tier, {}, p5::sonet::kSts3c)),
        gen(opt.seed + index) {
    p5::transport::TunnelConfig cfg;
    cfg.listen = opt.listen;
    cfg.udp = opt.udp;
    cfg.host = opt.host;
    cfg.port = static_cast<p5::u16>(opt.port + index);
    cfg.keepalive_ms = 20;  // keep the far deframer fed across idle gaps
    cfg.seed = opt.seed + 100 + index;
    tun = std::make_unique<p5::transport::Tunnel>(
        loop, p5::transport::TunnelBinding::endpoint(*ep), cfg);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace p5;
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  std::signal(SIGINT, on_sigint);

  transport::EventLoop loop;
  std::vector<std::unique_ptr<Lane>> lanes;
  for (unsigned i = 0; i < opt.channels; ++i) lanes.push_back(std::make_unique<Lane>(loop, opt, i));
  for (auto& l : lanes) l->tun->start();

  // Delivered-datagram tap: PPP linktype, each record ff 03 proto payload —
  // the framing TraceSource::classify() strips on replay.
  net::capture::CaptureTap tap({.nsec = true, .linktype = net::capture::kLinkPpp});
  const bool recording = !opt.pcap_out.empty();
  if (recording) {
    if (!tap.open(opt.pcap_out)) {
      std::fprintf(stderr, "p5_tunnel: cannot create %s\n", opt.pcap_out.c_str());
      return 1;
    }
    tap.use_wall_clock();
  }
  Bytes tap_buf;
  const auto tap_record = [&](u16 protocol, BytesView payload) {
    tap_buf.clear();
    tap_buf.reserve(payload.size() + 4);
    tap_buf.push_back(0xff);
    tap_buf.push_back(0x03);
    tap_buf.push_back(static_cast<u8>(protocol >> 8));
    tap_buf.push_back(static_cast<u8>(protocol & 0xff));
    tap_buf.insert(tap_buf.end(), payload.begin(), payload.end());
    tap.record(tap_buf);
  };

  std::printf("p5_tunnel: %s %s:%u, %u channel%s, %s, tier %s%s\n",
              opt.listen ? "listening on" : "connecting to", opt.host.c_str(), opt.port,
              opt.channels, opt.channels > 1 ? "s" : "", opt.udp ? "udp" : "tcp",
              core::to_string(opt.tier), opt.echo ? ", echoing" : "");

  u64 last_stats = loop.now_ms();
  u64 last_stats_bytes = 0;  // summed reaped_bytes at the previous stats line
  const u64 deadline_ms = opt.duration_s > 0 ? loop.now_ms() + opt.duration_s * 1000 : 0;
  bool draining = false;
  while (true) {
    for (auto& l : lanes) {
      // Sender: keep the device fed until the quota is met (--frames) or the
      // clock runs out (--duration, submission gated below by the deadline).
      const bool feeding = opt.frames > 0 ? l->submitted < opt.frames
                                          : (opt.duration_s > 0 && !opt.listen);
      if (!draining && feeding) {
        Bytes p = l->gen.next_datagram();
        if (l->ep->submit_datagram(0x0021, p)) {
          l->hash_out ^= fnv1a(p) * (l->submitted + 1);  // order-sensitive mix
          ++l->submitted;
        }
      }
      l->tun->pump();
      while (auto d = l->ep->reap_datagram()) {
        l->hash_in ^= fnv1a(d->payload) * (l->reaped + 1);
        ++l->reaped;
        l->reaped_bytes += d->payload.size();
        if (recording) tap_record(d->protocol, d->payload);
        if (opt.echo) (void)l->ep->submit_datagram(d->protocol, d->payload);
      }
    }
    loop.run_once(1);

    if (opt.stats_ms > 0 && loop.now_ms() - last_stats >= opt.stats_ms) {
      const u64 elapsed_ms = loop.now_ms() - last_stats;
      last_stats = loop.now_ms();
      u64 total_bytes = 0;
      for (const auto& l : lanes) total_bytes += l->reaped_bytes;
      const double mb_s = elapsed_ms > 0
                              ? static_cast<double>(total_bytes - last_stats_bytes) / 1e6 /
                                    (static_cast<double>(elapsed_ms) / 1e3)
                              : 0.0;
      last_stats_bytes = total_bytes;
      for (unsigned i = 0; i < lanes.size(); ++i) {
        const auto& l = *lanes[i];
        const auto s = l.tun->stats();
        std::printf(
            "[ch%u %s tier=%s] out %llu dgrams / in %llu | %.2f MB/s rx (all ch)"
            " | chunks in=%llu out=%llu lost=%llu rcvd=%llu"
            " | conn=%llu reconn=%llu | rx bad=%llu resync=%llu\n",
            i, transport::to_string(l.tun->state()), core::to_string(l.ep->tier()),
            static_cast<unsigned long long>(l.submitted),
            static_cast<unsigned long long>(l.reaped), mb_s,
            static_cast<unsigned long long>(s.frames_in),
            static_cast<unsigned long long>(s.frames_out),
            static_cast<unsigned long long>(s.frames_lost),
            static_cast<unsigned long long>(s.frames_rcvd),
            static_cast<unsigned long long>(s.connects),
            static_cast<unsigned long long>(s.reconnects),
            static_cast<unsigned long long>(l.ep->rx_counters().frames_bad),
            static_cast<unsigned long long>(l.ep->rx_stats().resyncs));
        std::printf(
            "       io: %llu syscalls, %.1f chunks/syscall, pool recycled %llu\n",
            static_cast<unsigned long long>(s.tx_syscalls + s.rx_syscalls),
            s.frames_per_syscall(), static_cast<unsigned long long>(s.pool_recycled));
      }
    }

    if (g_interrupted && !draining) {
      std::printf("\nSIGINT: draining...\n");
      draining = true;
      for (auto& l : lanes) l->tun->request_drain();
    }
    if (!draining && deadline_ms != 0 && loop.now_ms() >= deadline_ms) {
      std::printf("\n--duration elapsed: draining...\n");
      draining = true;
      for (auto& l : lanes) l->tun->request_drain();
    }
    if (draining) {
      bool all_done = true;
      for (auto& l : lanes)
        if (!l->tun->finished()) all_done = false;
      if (all_done) break;
    }
    // Sender with a quota and an echoing peer: stop once every datagram has
    // made the round trip.
    if (!draining && opt.frames > 0 && opt.echo == false) {
      bool all_back = true;
      for (auto& l : lanes)
        if (l->submitted < opt.frames || l->reaped < opt.frames || l->ep->tx_pending())
          all_back = false;
      if (all_back) {
        for (auto& l : lanes) l->tun->request_drain();
        draining = true;
      }
    }
  }

  std::printf("\nfinal:\n");
  bool ok = true;
  for (unsigned i = 0; i < lanes.size(); ++i) {
    const auto& l = *lanes[i];
    const auto s = l.tun->stats();
    const bool invariant = s.frames_in == s.frames_out + s.frames_lost;
    const bool hashes = opt.frames == 0 || l.reaped == 0 || l.hash_in == l.hash_out;
    ok = ok && invariant;
    std::printf("[ch%u tier=%s] dgrams out=%llu back=%llu  hash %s  chunk invariant %s"
                " (in=%llu out=%llu lost=%llu)  crc_bad=%llu\n",
                i, core::to_string(l.ep->tier()),
                static_cast<unsigned long long>(l.submitted),
                static_cast<unsigned long long>(l.reaped),
                l.reaped == l.submitted && l.submitted > 0
                    ? (hashes ? "MATCH" : "MISMATCH")
                    : "n/a",
                invariant ? "OK" : "VIOLATED",
                static_cast<unsigned long long>(s.frames_in),
                static_cast<unsigned long long>(s.frames_out),
                static_cast<unsigned long long>(s.frames_lost),
                static_cast<unsigned long long>(l.ep->rx_counters().frames_bad));
    if (l.reaped == l.submitted && l.submitted > 0 && !hashes) ok = false;
  }
  if (recording) {
    tap.close();
    const auto t = tap.stats();
    std::printf("pcap: %s — %llu records, %llu bytes, %llu drops at tap\n",
                opt.pcap_out.c_str(), static_cast<unsigned long long>(t.records),
                static_cast<unsigned long long>(t.bytes),
                static_cast<unsigned long long>(t.drops));
  }
  return ok ? 0 : 1;
}
