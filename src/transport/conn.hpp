// Framed, nonblocking connections over the event loop.
//
// Two concrete carriers share one interface:
//   * StreamConn — TCP with a u32 big-endian length prefix per chunk and a
//     bounded write queue. The queue is the backpressure coupling point: the
//     tunnel stops pulling from its SpscRing-fed binding while queued bytes
//     sit at the watermark, so socket stalls propagate back into the same
//     flow control the line card already uses.
//   * DgramConn — UDP, one SONET chunk per datagram. No queue and no
//     delivery promise; a send the kernel refuses is counted lost on the
//     spot, and the x^43+1 self-synchronous scrambler lets the far deframer
//     ride through the gap.
//
// Callback discipline (the rules that keep use-after-free away):
//   * A Conn never destroys itself; on_closed is invoked from the conn's own
//     stack, so the owner must not reset its pointer there — it swaps the
//     object out at the next establishment or in its destructor.
//   * close() is idempotent and deregisters from the loop immediately;
//     no callback fires after it returns.
#pragma once

#include <deque>
#include <functional>

#include "common/types.hpp"
#include "transport/event_loop.hpp"
#include "transport/socket.hpp"
#include "transport/stats.hpp"

namespace p5::transport {

struct ConnConfig {
  std::size_t send_watermark_bytes = 256 * 1024;  ///< queue cap before stalls
  std::size_t max_frame_bytes = 4 * 1024 * 1024;  ///< length-prefix sanity bound
  std::size_t read_chunk_bytes = 64 * 1024;       ///< per-readable recv slice
};

/// One framed bidirectional connection bound to an EventLoop.
class Conn {
 public:
  using FrameCallback = std::function<void(BytesView)>;

  Conn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg)
      : loop_(loop), stats_(stats), cfg_(cfg) {}
  virtual ~Conn() = default;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Accept one chunk for transmission. Returns false (without consuming the
  /// chunk into the counters) when the connection cannot take it — closed, or
  /// the write queue already at its watermark.
  virtual bool send_frame(BytesView payload) = 0;

  [[nodiscard]] virtual bool open() const = 0;
  /// True when send_frame would accept a chunk right now.
  [[nodiscard]] virtual bool writable() const = 0;
  [[nodiscard]] virtual std::size_t queued_bytes() const { return 0; }
  [[nodiscard]] virtual std::size_t queued_frames() const { return 0; }

  /// Graceful shutdown: flush what is queued, then half-close the send side
  /// and fire on_drained. Datagram carriers drain instantly.
  virtual void request_drain() = 0;
  /// Hard close: deregister, count still-queued chunks as lost, fire
  /// on_closed (unless already closed).
  virtual void close() = 0;

  void set_on_frame(FrameCallback cb) { on_frame_ = std::move(cb); }
  void set_on_open(std::function<void()> cb) { on_open_ = std::move(cb); }
  void set_on_closed(std::function<void()> cb) { on_closed_ = std::move(cb); }
  void set_on_drained(std::function<void()> cb) { on_drained_ = std::move(cb); }

  [[nodiscard]] u64 last_rx_ms() const { return last_rx_ms_; }

 protected:
  EventLoop& loop_;
  TransportTelemetry& stats_;
  ConnConfig cfg_;
  FrameCallback on_frame_;
  std::function<void()> on_open_;
  std::function<void()> on_closed_;
  std::function<void()> on_drained_;
  u64 last_rx_ms_ = 0;
};

/// TCP carrier: [u32 BE length][payload] per chunk, write-queue backpressure.
class StreamConn final : public Conn {
 public:
  /// Takes ownership of `fd`. `connecting` marks an EINPROGRESS socket: the
  /// conn watches for writability, checks SO_ERROR, then fires on_open (or
  /// on_closed if the handshake failed). Accepted / already-established
  /// sockets pass false and are open immediately; on_open is deferred
  /// through a zero-delay timer so the owner can finish wiring callbacks.
  StreamConn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg, Fd fd, bool connecting);
  ~StreamConn() override { close_internal(false); }

  bool send_frame(BytesView payload) override;
  [[nodiscard]] bool open() const override { return fd_.valid() && established_; }
  [[nodiscard]] bool writable() const override {
    return open() && !draining_ && queued_bytes_ < cfg_.send_watermark_bytes;
  }
  [[nodiscard]] std::size_t queued_bytes() const override { return queued_bytes_; }
  [[nodiscard]] std::size_t queued_frames() const override { return queue_.size(); }
  void request_drain() override;
  void close() override { close_internal(true); }

  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  void handle_events(u32 events);
  void finish_connect();
  void flush_write();
  void read_some();
  bool parse_frames();
  void update_interest();
  void close_internal(bool notify);

  Fd fd_;
  EventLoop::TimerId open_timer_ = 0;  ///< deferred on_open; cancelled on close
  bool established_ = false;
  bool draining_ = false;
  bool drained_notified_ = false;
  bool closing_ = false;  ///< re-entrancy latch for close_internal

  std::deque<Bytes> queue_;
  std::size_t head_off_ = 0;  ///< octets of the queue head already written
  std::size_t queued_bytes_ = 0;

  Bytes rx_buf_;  ///< accumulated unparsed inbound octets
};

/// UDP carrier: one chunk per datagram, fire-and-forget.
class DgramConn final : public Conn {
 public:
  /// `learn_peer` is the listener side: the socket is bound but unconnected,
  /// and the first datagram's source becomes the send destination.
  DgramConn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg, Fd fd, bool learn_peer);
  ~DgramConn() override { close_internal(false); }

  bool send_frame(BytesView payload) override;
  [[nodiscard]] bool open() const override { return fd_.valid(); }
  [[nodiscard]] bool writable() const override { return open() && has_peer_; }
  void request_drain() override;
  void close() override { close_internal(true); }

  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] bool has_peer() const { return has_peer_; }

 private:
  void read_some();
  void close_internal(bool notify);

  Fd fd_;
  EventLoop::TimerId open_timer_ = 0;  ///< deferred on_open; cancelled on close
  bool has_peer_ = false;
  bool closing_ = false;
  Bytes rx_buf_;
};

}  // namespace p5::transport
