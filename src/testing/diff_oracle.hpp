// Differential conformance oracle: the same packet stream through every
// implementation of the paper's datapath, with byte-exact agreement
// enforced at each layer.
//
// Four engines per direction:
//   * scalar_ref     — the seed-era byte/bit-at-a-time reference
//                      (fastpath/scalar_ref), plus an independent scalar
//                      re-implementation of the header/FCS assembly;
//   * SWAR fastpath  — the word-parallel kernels in fastpath/stuff_fast,
//                      called directly so they stay pinned to that tier;
//   * SIMD engine    — the runtime-dispatched fastpath::EscapeEngine at its
//                      best detected tier (AVX2/SSSE3/SSE2 where available),
//                      the engine behind hdlc::stuff / hdlc::encode_into;
//   * p5 pipeline    — the cycle-level Escape Generate / Escape Detect byte
//                      sorters (and, for full receive, a whole P5 device).
//
// encode() proves the four produce the identical stuffed image and FCS;
// decode() proves the four recover the identical frame content (and agree
// on dangling-escape aborts); receive() proves a whole wire stream —
// possibly mangled by a FaultyLine — yields the identical accepted-frame
// sequence from the software stacks and the cycle-accurate receiver, i.e. a
// corrupted frame is never delivered as good payload by any engine unless
// every engine delivers it.
//
// Adding a fifth engine: implement the stuff/destuff pair, append its
// output to the comparison sets in diff_oracle.cpp — the oracle's result
// structs and every suite that uses them pick it up unchanged (TESTING.md
// has the walk-through).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fastpath/scalar_ref.hpp"
#include "hdlc/frame.hpp"
#include "p5/config.hpp"
#include "p5/control.hpp"
#include "p5/escape_detect.hpp"
#include "p5/escape_generate.hpp"
#include "ppp/vj.hpp"
#include "rtl/fifo.hpp"
#include "rtl/simulator.hpp"
#include "sonet/spe.hpp"
#include "testing/fault.hpp"

namespace p5::testing {

namespace detail {
struct GenRig;
struct DetRig;
}  // namespace detail

/// One-shot: stream a frame of `content` through a fresh cycle-level Escape
/// Generate unit and return the stuffed image.
[[nodiscard]] Bytes escape_generate_stream(unsigned lanes, BytesView content,
                                           const hdlc::Accm& accm);

struct DetectStreamResult {
  Bytes data;
  bool abort = false;  ///< dangling escape at EOF (RFC 1662 invalid sequence)
};
/// One-shot: stream a stuffed frame (no flags) through a fresh cycle-level
/// Escape Detect unit.
[[nodiscard]] DetectStreamResult escape_detect_stream(unsigned lanes, BytesView stuffed);

class DiffOracle {
 public:
  explicit DiffOracle(hdlc::FrameConfig cfg = {}, unsigned lanes = 4);
  ~DiffOracle();
  DiffOracle(const DiffOracle&) = delete;
  DiffOracle& operator=(const DiffOracle&) = delete;

  struct EncodeResult {
    Bytes content;  ///< unstuffed frame content incl. FCS (agreed by all engines)
    Bytes stuffed;  ///< stuffed image (agreed by all engines)
    Bytes wire;     ///< flag + stuffed + flag, from the fused encoder
    bool agree = true;
    std::string diagnosis;  ///< first divergence, engine-labelled
  };
  /// Encode one packet through all transmit engines and diff the results.
  [[nodiscard]] EncodeResult encode(u16 protocol, BytesView payload);

  struct DecodeResult {
    Bytes recovered;  ///< destuffed content (agreed by all engines)
    bool ok = true;   ///< false: dangling escape (all engines must concur)
    bool agree = true;
    std::string diagnosis;
  };
  /// Decode a stuffed frame body (no flags) through all receive engines.
  [[nodiscard]] DecodeResult decode(BytesView stuffed);

  struct Delivery {
    u16 protocol = 0;
    Bytes payload;
    bool operator==(const Delivery&) const = default;
  };
  struct ReceiveResult {
    std::vector<Delivery> delivered;  ///< accepted frames, in arrival order
    bool agree = true;
    std::string diagnosis;
  };
  /// Run a raw flag-delimited wire stream (clean or faulted) through the
  /// software receive stack (scalar, SWAR, and dispatched-SIMD destuffers)
  /// and a cycle-accurate P5 device; all four must accept the same frames.
  /// Requires an uncompressed-header config (the P5 has no ACFC/PFC).
  /// The stream is padded with flag fill to a whole number of `lanes`-octet
  /// words (the P5 PHY moves whole words), identically for every engine.
  [[nodiscard]] ReceiveResult receive(BytesView wire);

  // ---- fifth leg: whole-endpoint device-tier equivalence -----------------

  /// One packet of a tier-equivalence run (mirrors core::TxRequest).
  struct TierPacket {
    u16 protocol = 0x0021;
    Bytes payload;
    std::optional<u8> control;  ///< numbered-mode Control override
  };
  /// One accepted frame as a receiver tier reported it.
  struct TierDelivery {
    u16 protocol = 0;
    u8 control = 0;
    Bytes payload;
    bool operator==(const TierDelivery&) const = default;
  };
  /// Everything a receiver tier can say about a stream: the full loss ledger.
  /// Two tiers agree only when every field matches.
  struct TierLedger {
    core::RxCounters counters;
    u64 rx_overflow_drops = 0;
    sonet::DeframerStats deframer;
    bool operator==(const TierLedger&) const = default;
  };
  struct TierEquivalenceResult {
    bool agree = true;
    std::string diagnosis;  ///< first divergence, leg-labelled
    /// Deliveries all four receiver rigs agreed on (clean leg).
    std::vector<TierDelivery> delivered;
    TierLedger clean_ledger;     ///< agreed ledger of the clean cross-decode
    TierLedger fault_ledger;     ///< agreed ledger of the faulted leg (if any)
    u64 canonical_frames = 0;    ///< delineated stuffed frames on the wire
  };
  /// Whole-endpoint differential leg: drive the same packet sequence through
  /// a cycle-level P5SonetEndpoint and a batch FastP5Endpoint and prove
  /// canonical equivalence:
  ///   * the two SONET chunk streams carry the identical delineated
  ///     stuffed-frame sequence (inter-frame flag fill — pipeline restart
  ///     latency — is the only permitted difference; the x^43+1 scrambler
  ///     makes the raw streams incomparable byte-for-byte);
  ///   * each stream, cross-decoded by BOTH tiers' receivers, yields
  ///     identical deliveries (protocol, control, payload) and identical
  ///     loss ledgers, and on a clean line the deliveries equal the
  ///     submitted packets;
  ///   * with `fault`, the SAME corrupted chunk sequence is fed to both
  ///     tiers' receivers, which must agree on every delivery, every junk /
  ///     abort verdict and every resync — the ledgers match field-for-field.
  /// Static: builds fresh endpoints per call (state is the point here).
  [[nodiscard]] static TierEquivalenceResult tier_equivalence(
      const core::P5Config& cfg, sonet::StsSpec sts,
      std::span<const TierPacket> packets, const FaultSpec* fault = nullptr);

  // ---- VJ header-compression round-trip leg ------------------------------

  struct VjRoundTripResult {
    bool agree = true;
    std::string diagnosis;  ///< first violation, packet-indexed
    u64 packets = 0;
    u64 delivered = 0;       ///< datagrams the decompressor reconstructed
    u64 dropped_on_wire = 0; ///< compressed packets the fault model discarded
    u64 stale_delivered = 0; ///< post-drop deliveries caught by the TCP checksum
    u64 header_bytes_in = 0;
    u64 header_bytes_out = 0;
  };
  /// RFC 1144 conformance leg: stream `datagrams` through a fresh
  /// Compressor → Decompressor pair. On a clean wire (drop_chance = 0) every
  /// delivery must be byte-identical to its input — compress∘decompress is
  /// the identity. With injected loss the RFC 1144 §4 guarantee is checked
  /// instead: every delivery is either byte-identical to its input or
  /// carries an invalid TCP checksum (so end-to-end TCP would discard it —
  /// desync never yields a silently-accepted wrong datagram), and the next
  /// uncompressed-TCP sync restores exact delivery.
  [[nodiscard]] static VjRoundTripResult vj_roundtrip(const ppp::vj::VjConfig& cfg,
                                                      std::span<const Bytes> datagrams,
                                                      double drop_chance = 0.0,
                                                      u64 seed = 1);

  [[nodiscard]] const hdlc::FrameConfig& config() const { return cfg_; }
  [[nodiscard]] unsigned lanes() const { return lanes_; }

 private:
  [[nodiscard]] Bytes scalar_encapsulate(u16 protocol, BytesView payload) const;

  hdlc::FrameConfig cfg_;
  unsigned lanes_;
  fastpath::scalar::ByteTableCrc scalar_crc16_;
  fastpath::scalar::ByteTableCrc scalar_crc32_;
  /// The dispatched engines under test, at the best tier this host detects.
  fastpath::EscapeEngine simd_tx_;
  fastpath::EscapeEngine simd_rx_;
  hdlc::FrameArena arena_;
  /// Persistent cycle-level rigs: fifos + unit + simulator reused across
  /// packets so a 100k-packet sweep does not rebuild pipelines per frame.
  std::unique_ptr<detail::GenRig> gen_;
  std::unique_ptr<detail::DetRig> det_;
};

}  // namespace p5::testing
