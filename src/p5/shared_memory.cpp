#include "p5/shared_memory.hpp"

namespace p5::core {

bool SharedMemory::post_tx(TxRequest req) {
  const std::size_t bytes = req.payload.size();
  if (tx_ring_.size() >= cfg_.tx_ring_entries || tx_bytes_ + bytes > cfg_.tx_pool_bytes) {
    ++stats_.tx_rejected;
    return false;
  }
  tx_bytes_ += bytes;
  stats_.tx_peak_bytes = std::max(stats_.tx_peak_bytes, tx_bytes_);
  tx_ring_.push_back(std::move(req));
  ++stats_.tx_posted;
  return true;
}

std::optional<TxRequest> SharedMemory::fetch_tx() {
  if (tx_ring_.empty()) return std::nullopt;
  TxRequest req = std::move(tx_ring_.front());
  tx_ring_.pop_front();
  tx_bytes_ -= req.payload.size();
  ++stats_.tx_completed;
  return req;
}

bool SharedMemory::store_rx(RxDelivery d) {
  const std::size_t bytes = d.payload.size();
  if (rx_ring_.size() >= cfg_.rx_ring_entries || rx_bytes_ + bytes > cfg_.rx_pool_bytes) {
    ++stats_.rx_dropped;
    return false;
  }
  rx_bytes_ += bytes;
  stats_.rx_peak_bytes = std::max(stats_.rx_peak_bytes, rx_bytes_);
  rx_ring_.push_back(std::move(d));
  ++stats_.rx_stored;
  return true;
}

std::optional<RxDelivery> SharedMemory::reap_rx() {
  if (rx_ring_.empty()) return std::nullopt;
  RxDelivery d = std::move(rx_ring_.front());
  rx_ring_.pop_front();
  rx_bytes_ -= d.payload.size();
  ++stats_.rx_reaped;
  return d;
}

}  // namespace p5::core
