#!/usr/bin/env bash
# Repo health check: the tier-1 verify line (configure, build, full ctest)
# followed by a smoke run of every registered bench (ctest -L bench).
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

echo "== tier-1: configure + build + ctest =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo
echo "== bench smoke: ctest -L bench =="
(cd "$BUILD_DIR" && ctest -L bench --output-on-failure -j)

echo
echo "check.sh: all green"
