// HDLC-like PPP frame assembly and parsing (RFC 1662 framing around RFC 1661
// fields), with the programmability knobs the paper's OAM exposes:
//   * programmable Address octet (MAPOS compatibility, RFC 2171);
//   * 1- or 2-octet Protocol field (PFC negotiation);
//   * Address/Control field compression (ACFC);
//   * FCS-16 or FCS-32 (paper uses FCS-32 "for accuracy purposes").
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crc/crc_spec.hpp"
#include "fastpath/escape_simd.hpp"
#include "hdlc/accm.hpp"

namespace p5::hdlc {

inline constexpr u8 kDefaultAddress = 0xFF;  ///< all-stations
inline constexpr u8 kDefaultControl = 0x03;  ///< unnumbered information (UI)

enum class FcsKind : u8 { kFcs16, kFcs32 };

struct FrameConfig {
  u8 address = kDefaultAddress;  ///< programmable for MAPOS unicast/multicast
  u8 control = kDefaultControl;
  bool acfc = false;          ///< compress (omit) address+control on transmit
  bool pfc = false;           ///< 1-octet protocol field when protocol <= 0xFF
  FcsKind fcs = FcsKind::kFcs32;
  Accm accm = Accm::sonet();
  std::size_t max_payload = 1500;  ///< negotiated MRU (RFC 1661 default)

  [[nodiscard]] const crc::CrcSpec& crc_spec() const {
    return fcs == FcsKind::kFcs32 ? crc::kFcs32 : crc::kFcs16;
  }
  [[nodiscard]] std::size_t fcs_bytes() const { return fcs == FcsKind::kFcs32 ? 4 : 2; }
};

/// Frame *content*: the octets between the flags, before stuffing:
/// [address control] protocol payload fcs.
[[nodiscard]] Bytes encapsulate(const FrameConfig& cfg, u16 protocol, BytesView payload);

/// One frame of a batched encode: protocol + payload, with optional
/// per-frame Address and Control overrides (MAPOS gives every frame its own
/// destination; numbered mode carries sequence numbers in Control) while the
/// rest of the config is shared.
struct BatchFrame {
  u16 protocol = 0;
  BytesView payload;
  std::optional<u8> address;
  std::optional<u8> control;
};

/// Reusable scratch for the zero-allocation encoder. Steady state (same-size
/// frames through the same arena) performs no heap allocation at all: the
/// wire buffer is cleared and refilled in place.
///
/// The arena also caches the ACCM-derived escape engine (dispatch tables and
/// tier selection), so per-frame setup is paid once per ACCM programming
/// instead of once per frame — the software analogue of the P5 keeping its
/// Escape Generate tables in OAM registers rather than rebuilding them per
/// packet.
class FrameArena {
 public:
  /// The last encoded wire image (valid until the next encode_into call).
  [[nodiscard]] const Bytes& wire() const { return wire_; }

  /// The cached transmit escape engine for `accm`, (re)derived only when the
  /// ACCM actually changes. Construction-time callers (e.g. the line-card
  /// channel) use this to hoist table derivation out of the hot loop.
  [[nodiscard]] const fastpath::EscapeEngine& escape_engine(const Accm& accm) {
    if (!tx_engine_ || tx_engine_->accm() != accm) tx_engine_.emplace(accm);
    return *tx_engine_;
  }

  /// The currently cached transmit engine, if any — telemetry readers peek
  /// at its dispatch-tier counters without forcing a (re)derivation.
  [[nodiscard]] const fastpath::EscapeEngine* cached_tx_engine() const {
    return tx_engine_ ? &*tx_engine_ : nullptr;
  }

  /// The receive-side engine (destuffing is ACCM-independent on the wire).
  [[nodiscard]] const fastpath::EscapeEngine& rx_escape_engine() {
    if (!rx_engine_) rx_engine_.emplace(Accm::sonet());
    return *rx_engine_;
  }

  /// Per-frame results of the last encode_batch_into / decode_batch_into.
  [[nodiscard]] std::size_t frame_count() const { return spans_.size(); }
  [[nodiscard]] BytesView frame(std::size_t i) const {
    return BytesView(wire_.data() + spans_[i].first, spans_[i].second - spans_[i].first);
  }
  [[nodiscard]] bool frame_ok(std::size_t i) const { return i >= oks_.size() || oks_[i] != 0; }

 private:
  friend BytesView encode_into(FrameArena&, const FrameConfig&, u16, BytesView);
  friend BytesView encode_batch_into(FrameArena&, const FrameConfig&,
                                     std::span<const BatchFrame>);
  friend void decode_batch_into(FrameArena&, std::span<const BytesView>);
  friend Bytes build_wire_frame(const FrameConfig&, u16, BytesView);
  Bytes wire_;
  std::vector<std::pair<std::size_t, std::size_t>> spans_;
  std::vector<u8> oks_;
  std::optional<fastpath::EscapeEngine> tx_engine_;
  std::optional<fastpath::EscapeEngine> rx_engine_;
};

/// Fused single-pass encoder: computes the FCS and stuffs in one scan of the
/// payload, writing flag + stuff(content) + flag straight into the arena with
/// no intermediate content/stuffed buffers. The wire image is byte-identical
/// to build_wire_frame. Returns a view into the arena, valid until the next
/// call with the same arena.
[[nodiscard]] BytesView encode_into(FrameArena& arena, const FrameConfig& cfg, u16 protocol,
                                    BytesView payload);

/// Full wire image: flag + stuff(content) + flag. Convenience wrapper over
/// encode_into that returns an owned buffer.
[[nodiscard]] Bytes build_wire_frame(const FrameConfig& cfg, u16 protocol, BytesView payload);

/// Batched encoder: encode every frame back-to-back into the arena with one
/// worst-case reservation and one escape-engine/CRC setup for the whole
/// batch. Returns the concatenated wire stream; arena.frame(i) views the
/// i-th frame's wire image. Each image is byte-identical to encode_into with
/// the same (address-overridden) config.
[[nodiscard]] BytesView encode_batch_into(FrameArena& arena, const FrameConfig& cfg,
                                          std::span<const BatchFrame> frames);

/// Batched destuffer: destuff every chunk (stuffed frame content, no flags —
/// as produced by the delineator) back-to-back into the arena with one
/// reservation. arena.frame(i) views the i-th destuffed content and
/// arena.frame_ok(i) reports a dangling-escape failure, with partial content
/// retained exactly like hdlc::destuff. Inputs must not alias the arena.
void decode_batch_into(FrameArena& arena, std::span<const BytesView> stuffed);

enum class ParseError : u8 {
  kTooShort,
  kBadFcs,
  kBadAddress,
  kBadControl,
  kTooLong,
};

struct ParsedFrame {
  u16 protocol = 0;
  Bytes payload;
};

struct ParseResult {
  std::optional<ParsedFrame> frame;
  std::optional<ParseError> error;
  [[nodiscard]] bool ok() const { return frame.has_value(); }
};

/// Parse de-stuffed frame content (as produced by encapsulate / received by
/// the delineator+destuffer). Accepts ACFC/PFC-compressed headers whether or
/// not the config enables them on transmit, per RFC 1661 robustness rules.
[[nodiscard]] ParseResult parse(const FrameConfig& cfg, BytesView content);

}  // namespace p5::hdlc
