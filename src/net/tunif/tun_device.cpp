#include "net/tunif/tun_device.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <fcntl.h>
#include <linux/if.h>
#include <linux/if_tun.h>
#include <netinet/in.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <arpa/inet.h>
#include <unistd.h>
#endif

namespace p5::net::tunif {

#if defined(__linux__)

namespace {

constexpr char kTunNode[] = "/dev/net/tun";
// An IP datagram from a TUN fd is bounded by the interface MTU; 64 KiB
// covers any MTU this repo configures with room to detect oversize.
constexpr std::size_t kReadBufBytes = 65536;

/// Fill a sockaddr_in inside an ifreq field. False: not a dotted quad.
bool set_addr(sockaddr* sa, const std::string& dotted) {
  auto* sin = reinterpret_cast<sockaddr_in*>(sa);
  std::memset(sin, 0, sizeof *sin);
  sin->sin_family = AF_INET;
  return ::inet_pton(AF_INET, dotted.c_str(), &sin->sin_addr) == 1;
}

}  // namespace

TunDevice::~TunDevice() { close(); }

TunDevice::TunDevice(TunDevice&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      name_(std::move(other.name_)),
      error_(std::move(other.error_)) {}

TunDevice& TunDevice::operator=(TunDevice&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    name_ = std::move(other.name_);
    error_ = std::move(other.error_);
  }
  return *this;
}

bool TunDevice::available() {
  const int fd = ::open(kTunNode, O_RDWR | O_CLOEXEC);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

bool TunDevice::open(const std::string& ifname_hint) {
  close();
  error_.clear();
  fd_ = ::open(kTunNode, O_RDWR | O_CLOEXEC);
  if (fd_ < 0) {
    error_ = std::string(kTunNode) + ": " + std::strerror(errno);
    return false;
  }
  ifreq ifr{};
  ifr.ifr_flags = IFF_TUN | IFF_NO_PI;
  if (!ifname_hint.empty() && ifname_hint.size() < IFNAMSIZ)
    std::strncpy(ifr.ifr_name, ifname_hint.c_str(), IFNAMSIZ - 1);
  if (::ioctl(fd_, TUNSETIFF, &ifr) < 0) {
    error_ = std::string("TUNSETIFF: ") + std::strerror(errno);
    close();
    return false;
  }
  name_ = ifr.ifr_name;
  const int fl = ::fcntl(fd_, F_GETFL);
  if (fl < 0 || ::fcntl(fd_, F_SETFL, fl | O_NONBLOCK) < 0) {
    error_ = std::string("O_NONBLOCK: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool TunDevice::configure_ipv4(const std::string& local, const std::string& peer,
                               u32 mtu) {
  if (fd_ < 0) {
    error_ = "configure before open";
    return false;
  }
  // Interface ioctls go through an ordinary AF_INET socket, not the tun fd.
  const int sk = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (sk < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  auto fail = [&](const char* what) {
    error_ = std::string(what) + ": " + std::strerror(errno);
    ::close(sk);
    return false;
  };
  ifreq ifr{};
  std::strncpy(ifr.ifr_name, name_.c_str(), IFNAMSIZ - 1);
  if (!set_addr(&ifr.ifr_addr, local)) return fail("local address");
  if (::ioctl(sk, SIOCSIFADDR, &ifr) < 0) return fail("SIOCSIFADDR");
  if (!set_addr(&ifr.ifr_dstaddr, peer)) return fail("peer address");
  if (::ioctl(sk, SIOCSIFDSTADDR, &ifr) < 0) return fail("SIOCSIFDSTADDR");
  if (!set_addr(&ifr.ifr_netmask, "255.255.255.255")) return fail("netmask");
  if (::ioctl(sk, SIOCSIFNETMASK, &ifr) < 0) return fail("SIOCSIFNETMASK");
  if (mtu) {
    ifr.ifr_mtu = static_cast<int>(mtu);
    if (::ioctl(sk, SIOCSIFMTU, &ifr) < 0) return fail("SIOCSIFMTU");
  }
  if (::ioctl(sk, SIOCGIFFLAGS, &ifr) < 0) return fail("SIOCGIFFLAGS");
  ifr.ifr_flags |= IFF_UP | IFF_RUNNING | IFF_POINTOPOINT;
  if (::ioctl(sk, SIOCSIFFLAGS, &ifr) < 0) return fail("SIOCSIFFLAGS");
  ::close(sk);
  return true;
}

ReadStatus TunDevice::read_packet(Bytes& out) {
  if (fd_ < 0) return ReadStatus::kError;
  out.resize(kReadBufBytes);
  const ssize_t n = ::read(fd_, out.data(), out.size());
  if (n < 0) {
    out.clear();
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return ReadStatus::kAgain;
    error_ = std::string("read: ") + std::strerror(errno);
    return ReadStatus::kError;
  }
  out.resize(static_cast<std::size_t>(n));
  return ReadStatus::kPacket;
}

bool TunDevice::write_packet(BytesView packet) {
  if (fd_ < 0) return false;
  return ::write(fd_, packet.data(), packet.size()) ==
         static_cast<ssize_t>(packet.size());
}

void TunDevice::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  name_.clear();
}

#else  // !__linux__ — every entry point reports unavailable.

TunDevice::~TunDevice() = default;
TunDevice::TunDevice(TunDevice&&) noexcept {}
TunDevice& TunDevice::operator=(TunDevice&&) noexcept { return *this; }
bool TunDevice::available() { return false; }
bool TunDevice::open(const std::string&) {
  error_ = "TUN devices are Linux-only";
  return false;
}
bool TunDevice::configure_ipv4(const std::string&, const std::string&, u32) {
  error_ = "TUN devices are Linux-only";
  return false;
}
ReadStatus TunDevice::read_packet(Bytes&) { return ReadStatus::kError; }
bool TunDevice::write_packet(BytesView) { return false; }
void TunDevice::close() {}

#endif

}  // namespace p5::net::tunif
