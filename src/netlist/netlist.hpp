// Gate-level boolean network with D flip-flops — the structural
// representation the synthesis experiments (Tables 1-3) are computed from.
//
// Every P5 block has a generator in src/netlist/circuits that builds its
// actual decision logic as gates; src/netlist/lut_mapper then covers the
// combinational portion with K-input LUTs and src/netlist/timing turns LUT
// depth into per-device fmax. Nothing in Tables 1-3 is a hard-coded
// constant: area and speed emerge from the logic itself.
//
// The netlist is also *executable* (see Netlist::Sim) so every structural
// circuit is verified cycle-by-cycle against its behavioural model.
#pragma once

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace p5::netlist {

using NodeId = u32;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

enum class Op : u8 {
  kInput,   ///< primary input
  kConst0,
  kConst1,
  kAnd,     ///< n-ary AND
  kOr,      ///< n-ary OR
  kXor,     ///< n-ary XOR
  kNot,     ///< 1 fan-in
  kMux,     ///< fanin[0] ? fanin[2] : fanin[1]  (sel, a0, a1)
  kDff,     ///< 1 fan-in (D); output is the registered value
};

[[nodiscard]] const char* to_string(Op op);

struct Gate {
  Op op = Op::kConst0;
  std::vector<NodeId> fanin;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // ---- construction ----
  NodeId input(const std::string& label);
  NodeId constant(bool value);
  NodeId gate(Op op, std::vector<NodeId> fanin);
  NodeId dff(NodeId d = kInvalidNode);
  /// Re-point an existing DFF's D input (for registers built before their
  /// next-state logic, e.g. state machines).
  void set_dff_input(NodeId dff_node, NodeId d);
  void output(NodeId node, const std::string& label);

  // Convenience single/double-input forms.
  NodeId not_(NodeId a) { return gate(Op::kNot, {a}); }
  NodeId and_(NodeId a, NodeId b) { return gate(Op::kAnd, {a, b}); }
  NodeId or_(NodeId a, NodeId b) { return gate(Op::kOr, {a, b}); }
  NodeId xor_(NodeId a, NodeId b) { return gate(Op::kXor, {a, b}); }
  NodeId mux(NodeId sel, NodeId when0, NodeId when1) {
    return gate(Op::kMux, {sel, when0, when1});
  }

  // ---- introspection ----
  [[nodiscard]] std::size_t size() const { return gates_.size(); }
  [[nodiscard]] const Gate& at(NodeId id) const {
    P5_EXPECTS(id < gates_.size());
    return gates_[id];
  }
  [[nodiscard]] const std::vector<NodeId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NodeId>& dffs() const { return dffs_; }
  [[nodiscard]] const std::vector<NodeId>& outputs() const { return outputs_; }
  [[nodiscard]] const std::string& input_label(std::size_t i) const { return input_labels_[i]; }
  [[nodiscard]] const std::string& output_label(std::size_t i) const { return output_labels_[i]; }
  [[nodiscard]] std::size_t num_ffs() const { return dffs_.size(); }
  /// Fanout count per node (computed on demand).
  [[nodiscard]] std::vector<u32> fanout_counts() const;

  /// Merge another netlist into this one as a sub-block; returns the node-id
  /// offset. The sub-block's inputs/outputs/DFFs are all absorbed; callers
  /// re-wire via the returned mapping of old id -> new id (old + offset).
  NodeId absorb(const Netlist& other);

  // ---- simulation ----
  /// Stateful two-phase simulator over the netlist.
  class Sim {
   public:
    explicit Sim(const Netlist& nl);
    /// Set primary input i (index into inputs()).
    void set_input(std::size_t i, bool v);
    /// Evaluate combinational logic for the current cycle.
    void eval();
    /// Latch all DFFs (clock edge).
    void clock();
    /// Value of output i (after eval()).
    [[nodiscard]] bool output(std::size_t i) const;
    /// Raw node value (after eval()).
    [[nodiscard]] bool value(NodeId id) const { return values_[id]; }
    void reset();

   private:
    const Netlist& nl_;
    std::vector<NodeId> topo_;  ///< combinational gates in dependency order
    std::vector<char> values_;
    std::vector<char> dff_state_;
  };

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<NodeId> inputs_;
  std::vector<std::string> input_labels_;
  std::vector<NodeId> dffs_;
  std::vector<NodeId> outputs_;
  std::vector<std::string> output_labels_;
};

}  // namespace p5::netlist
