#include "ppp/vj.hpp"

#include <algorithm>
#include <cstring>

namespace p5::ppp::vj {

namespace {

// IPv4 header field offsets.
constexpr std::size_t kIpTos = 1;
constexpr std::size_t kIpLen = 2;
constexpr std::size_t kIpId = 4;
constexpr std::size_t kIpFrag = 6;
constexpr std::size_t kIpTtl = 8;
constexpr std::size_t kIpProto = 9;
constexpr std::size_t kIpCksum = 10;
constexpr std::size_t kIpSrc = 12;
constexpr std::size_t kIpDst = 16;

// TCP header field offsets (relative to the TCP header start).
constexpr std::size_t kTcpSeqOff = 4;
constexpr std::size_t kTcpAckOff = 8;
constexpr std::size_t kTcpOff = 12;
constexpr std::size_t kTcpFlags = 13;
constexpr std::size_t kTcpWin = 14;
constexpr std::size_t kTcpCksum = 16;
constexpr std::size_t kTcpUrp = 18;

constexpr u8 kIpProtoTcp = 6;

[[nodiscard]] u16 rd16(BytesView b, std::size_t off) { return get_be16(b, off); }
[[nodiscard]] u32 rd32(BytesView b, std::size_t off) { return get_be32(b, off); }
void wr16(Bytes& b, std::size_t off, u16 v) {
  b[off] = static_cast<u8>(v >> 8);
  b[off + 1] = static_cast<u8>(v);
}
void wr32(Bytes& b, std::size_t off, u32 v) {
  b[off] = static_cast<u8>(v >> 24);
  b[off + 1] = static_cast<u8>(v >> 16);
  b[off + 2] = static_cast<u8>(v >> 8);
  b[off + 3] = static_cast<u8>(v);
}

/// RFC 1071 ones-complement sum (local copy: p5_ppp does not link p5_net).
[[nodiscard]] u16 ones_complement_checksum(BytesView data) {
  u32 sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) sum += rd16(data, i);
  if (i < data.size()) sum += static_cast<u32>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<u16>(~sum);
}

/// Parsed geometry of an IPv4+TCP datagram (views into the buffer).
struct TcpIpView {
  std::size_t ihl = 0;   ///< IP header octets
  std::size_t thl = 0;   ///< TCP header octets
  std::size_t hlen = 0;  ///< ihl + thl
  u8 flags = 0;
};

[[nodiscard]] std::optional<TcpIpView> parse_tcpip(BytesView b) {
  if (b.size() < 20 || (b[0] >> 4) != 4) return std::nullopt;
  TcpIpView v;
  v.ihl = static_cast<std::size_t>(b[0] & 0x0F) * 4;
  if (v.ihl < 20 || b.size() < v.ihl + 20) return std::nullopt;
  if (b[kIpProto] != kIpProtoTcp) return std::nullopt;
  if ((rd16(b, kIpFrag) & 0x3FFF) != 0) return std::nullopt;  // fragment
  v.thl = static_cast<std::size_t>(b[v.ihl + kTcpOff] >> 4) * 4;
  if (v.thl < 20 || b.size() < v.ihl + v.thl) return std::nullopt;
  v.hlen = v.ihl + v.thl;
  v.flags = b[v.ihl + kTcpFlags];
  return v;
}

/// RFC 1144 delta encoding: 1 octet for 1..255, else 0x00 + 2 octets BE.
void encode_delta(Bytes& out, u16 v) {
  if (v >= 256) {
    out.push_back(0);
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v));
  } else {
    out.push_back(static_cast<u8>(v));
  }
}

/// Variant used where 0 is a legal value (IP ID, urgent pointer).
void encode_delta_z(Bytes& out, u16 v) {
  if (v >= 256 || v == 0) {
    out.push_back(0);
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v));
  } else {
    out.push_back(static_cast<u8>(v));
  }
}

/// Bounds-checked reader for the compressed header.
struct Cursor {
  BytesView b;
  std::size_t pos = 0;
  bool ok = true;

  u8 byte() {
    if (pos >= b.size()) {
      ok = false;
      return 0;
    }
    return b[pos++];
  }
  u16 delta() {
    const u8 first = byte();
    if (!ok) return 0;
    if (first != 0) return first;
    const u8 hi = byte();
    const u8 lo = byte();
    return static_cast<u16>((hi << 8) | lo);
  }
};

/// The (src, dst, sport, dport) connection tuple of a header image.
struct ConnKey {
  u32 src, dst;
  u16 sport, dport;
  bool operator==(const ConnKey&) const = default;
};

[[nodiscard]] ConnKey conn_key(BytesView header) {
  const std::size_t ihl = static_cast<std::size_t>(header[0] & 0x0F) * 4;
  return ConnKey{rd32(header, kIpSrc), rd32(header, kIpDst), rd16(header, ihl),
                 rd16(header, ihl + 2)};
}

void refresh_ip_checksum(Bytes& header, std::size_t ihl) {
  header[kIpCksum] = 0;
  header[kIpCksum + 1] = 0;
  wr16(header, kIpCksum, ones_complement_checksum(BytesView(header.data(), ihl)));
}

}  // namespace

// ---- Compressor --------------------------------------------------------

Compressor::Compressor(VjConfig cfg) : cfg_(cfg) {
  slots_.resize(std::min<std::size_t>(cfg_.max_slot_id + 1u, kMaxSlotLimit));
}

Compressor::Result Compressor::compress(BytesView datagram) {
  ++stats_.packets;
  Result out;
  const auto view = parse_tcpip(datagram);
  // Non-TCP, fragments, and connection-management segments (SYN/FIN/RST or
  // a missing ACK) travel as plain IP without touching any slot state.
  if (!view || (view->flags & (kTcpFin | kTcpSyn | kTcpRst)) != 0 ||
      (view->flags & kTcpAck) == 0) {
    ++stats_.passthrough;
    out.cls = PacketClass::kIp;
    out.packet.assign(datagram.begin(), datagram.end());
    return out;
  }

  const std::size_t hlen = view->hlen;
  const std::size_t ihl = view->ihl;
  stats_.header_bytes_in += hlen;
  const BytesView header(datagram.data(), hlen);
  const ConnKey key = conn_key(header);

  // Slot lookup; miss takes the first free slot, else evicts the least
  // recently used connection.
  int idx = -1;
  int victim = -1;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.in_use && conn_key(s.header) == key) {
      idx = static_cast<int>(i);
      break;
    }
    if (victim >= 0 && !slots_[static_cast<std::size_t>(victim)].in_use) continue;
    if (!s.in_use || victim < 0 ||
        s.last_used < slots_[static_cast<std::size_t>(victim)].last_used) {
      victim = static_cast<int>(i);
    }
  }

  const auto send_uncompressed = [&](int slot) {
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.in_use = true;
    s.last_used = ++use_clock_;
    s.header.assign(header.begin(), header.end());
    last_slot_ = slot;
    ++stats_.uncompressed_sync;
    stats_.header_bytes_out += hlen;
    out.cls = PacketClass::kUncompressedTcp;
    out.packet.assign(datagram.begin(), datagram.end());
    out.packet[kIpProto] = static_cast<u8>(slot);
    return out;
  };

  if (idx < 0) return send_uncompressed(victim);

  Slot& slot = slots_[static_cast<std::size_t>(idx)];
  const Bytes& old = slot.header;

  // Everything outside the delta'd fields must be byte-identical, including
  // IP and TCP options and any flag other than PUSH/URG (RFC 1144 §3.2.2).
  const bool same_shape =
      old.size() == hlen && old[0] == datagram[0] && old[kIpTos] == datagram[kIpTos] &&
      old[kIpFrag] == datagram[kIpFrag] && old[kIpFrag + 1] == datagram[kIpFrag + 1] &&
      old[kIpTtl] == datagram[kIpTtl] && old[ihl + kTcpOff] == datagram[ihl + kTcpOff] &&
      (old[ihl + kTcpFlags] & ~(kTcpPsh | kTcpUrg)) == (view->flags & ~(kTcpPsh | kTcpUrg)) &&
      std::equal(old.begin() + 20, old.begin() + static_cast<long>(ihl), datagram.begin() + 20) &&
      std::equal(old.begin() + static_cast<long>(ihl + 20), old.end(),
                 datagram.begin() + static_cast<long>(ihl + 20));
  if (!same_shape) return send_uncompressed(idx);

  Bytes deltas;
  u8 changes = 0;

  const u16 old_urp = rd16(old, ihl + kTcpUrp);
  if ((view->flags & kTcpUrg) != 0) {
    encode_delta_z(deltas, rd16(datagram, ihl + kTcpUrp));
    changes |= kNewU;
  } else if (rd16(datagram, ihl + kTcpUrp) != old_urp) {
    return send_uncompressed(idx);
  }

  const u16 dwin = static_cast<u16>(rd16(datagram, ihl + kTcpWin) - rd16(old, ihl + kTcpWin));
  if (dwin != 0) {
    encode_delta(deltas, dwin);
    changes |= kNewW;
  }

  const u32 dack = rd32(datagram, ihl + kTcpAckOff) - rd32(old, ihl + kTcpAckOff);
  if (dack != 0) {
    if (dack > 0xFFFF) return send_uncompressed(idx);
    encode_delta(deltas, static_cast<u16>(dack));
    changes |= kNewA;
  }

  const u32 dseq = rd32(datagram, ihl + kTcpSeqOff) - rd32(old, ihl + kTcpSeqOff);
  if (dseq != 0) {
    if (dseq > 0xFFFF) return send_uncompressed(idx);
    encode_delta(deltas, static_cast<u16>(dseq));
    changes |= kNewS;
  }

  const u16 old_ip_len = rd16(old, kIpLen);
  const u16 old_data = static_cast<u16>(old_ip_len - old.size());
  switch (changes) {
    case 0:
      // Retransmission, duplicate ack or window probe — unless this is a
      // data packet right after a pure ack, send it uncompressed so a peer
      // that missed the original stays in sync.
      if (rd16(datagram, kIpLen) != old_ip_len && old_ip_len == old.size()) break;
      return send_uncompressed(idx);
    case kSpecialI:
    case kSpecialD:
      // The reserved mask values must never appear by accident.
      return send_uncompressed(idx);
    case kNewS | kNewA:
      if (dseq == dack && dseq == old_data) {
        changes = kSpecialI;  // echoed interactive traffic
        deltas.clear();
      }
      break;
    case kNewS:
      if (dseq == old_data) {
        changes = kSpecialD;  // unidirectional data transfer
        deltas.clear();
      }
      break;
    default:
      break;
  }

  const u16 did = static_cast<u16>(rd16(datagram, kIpId) - rd16(old, kIpId));
  if (did != 1) {
    encode_delta_z(deltas, did);
    changes |= kNewI;
  }
  if ((view->flags & kTcpPsh) != 0) changes |= kPush;

  slot.header.assign(header.begin(), header.end());
  slot.last_used = ++use_clock_;

  const u8 cksum_hi = datagram[ihl + kTcpCksum];
  const u8 cksum_lo = datagram[ihl + kTcpCksum + 1];
  out.cls = PacketClass::kCompressedTcp;
  if (idx != last_slot_ || !cfg_.comp_slot_id) {
    out.packet.push_back(changes | kNewC);
    out.packet.push_back(static_cast<u8>(idx));
  } else {
    out.packet.push_back(changes);
  }
  last_slot_ = idx;
  out.packet.push_back(cksum_hi);
  out.packet.push_back(cksum_lo);
  append(out.packet, deltas);
  append(out.packet, BytesView(datagram.data() + hlen, datagram.size() - hlen));
  ++stats_.compressed;
  stats_.header_bytes_out += out.packet.size() - (datagram.size() - hlen);
  return out;
}

// ---- Decompressor ------------------------------------------------------

Decompressor::Decompressor(VjConfig cfg) : cfg_(cfg) {
  slots_.resize(std::min<std::size_t>(cfg_.max_slot_id + 1u, kMaxSlotLimit));
}

std::optional<Bytes> Decompressor::decompress(PacketClass cls, BytesView packet) {
  if (cls == PacketClass::kIp) return Bytes(packet.begin(), packet.end());

  if (cls == PacketClass::kUncompressedTcp) {
    ++stats_.uncompressed_in;
    // A full datagram whose IP protocol octet carries the slot id.
    if (packet.size() < 20) {
      ++stats_.errors;
      toss_ = true;
      return std::nullopt;
    }
    const u8 slot_id = packet[kIpProto];
    Bytes datagram(packet.begin(), packet.end());
    datagram[kIpProto] = kIpProtoTcp;
    const auto view = parse_tcpip(datagram);
    if (!view || slot_id >= slots_.size()) {
      ++stats_.errors;
      toss_ = true;
      return std::nullopt;
    }
    Slot& s = slots_[slot_id];
    s.in_use = true;
    s.header.assign(datagram.begin(), datagram.begin() + static_cast<long>(view->hlen));
    last_slot_ = slot_id;
    toss_ = false;
    return datagram;
  }

  // Compressed TCP.
  ++stats_.compressed_in;
  Cursor cur{packet};
  const u8 changes = cur.byte();
  int slot = last_slot_;
  if ((changes & kNewC) != 0) {
    const u8 id = cur.byte();
    if (!cur.ok || id >= slots_.size() || !slots_[id].in_use) {
      ++stats_.errors;
      toss_ = true;
      return std::nullopt;
    }
    slot = id;
    toss_ = false;
  } else if (toss_ || slot < 0 || !slots_[static_cast<std::size_t>(slot)].in_use) {
    // Out of sync: drop until an explicit slot id resynchronizes us.
    ++stats_.tossed;
    return std::nullopt;
  }

  Bytes& hdr = slots_[static_cast<std::size_t>(slot)].header;
  const std::size_t ihl = static_cast<std::size_t>(hdr[0] & 0x0F) * 4;

  // TCP checksum rides the wire unmodified.
  const u8 cksum_hi = cur.byte();
  const u8 cksum_lo = cur.byte();
  hdr[ihl + kTcpCksum] = cksum_hi;
  hdr[ihl + kTcpCksum + 1] = cksum_lo;

  u8 flags = hdr[ihl + kTcpFlags];
  flags = (changes & kPush) != 0 ? (flags | kTcpPsh) : (flags & ~kTcpPsh);

  const u16 old_ip_len = rd16(hdr, kIpLen);
  const u16 old_data = static_cast<u16>(old_ip_len - hdr.size());
  switch (changes & kSpecialsMask) {
    case kSpecialI:
      wr32(hdr, ihl + kTcpAckOff, rd32(hdr, ihl + kTcpAckOff) + old_data);
      wr32(hdr, ihl + kTcpSeqOff, rd32(hdr, ihl + kTcpSeqOff) + old_data);
      break;
    case kSpecialD:
      wr32(hdr, ihl + kTcpSeqOff, rd32(hdr, ihl + kTcpSeqOff) + old_data);
      break;
    default:
      if ((changes & kNewU) != 0) {
        flags |= kTcpUrg;
        wr16(hdr, ihl + kTcpUrp, cur.delta());
      } else {
        flags &= ~kTcpUrg;
      }
      if ((changes & kNewW) != 0)
        wr16(hdr, ihl + kTcpWin, static_cast<u16>(rd16(hdr, ihl + kTcpWin) + cur.delta()));
      if ((changes & kNewA) != 0)
        wr32(hdr, ihl + kTcpAckOff, rd32(hdr, ihl + kTcpAckOff) + cur.delta());
      if ((changes & kNewS) != 0)
        wr32(hdr, ihl + kTcpSeqOff, rd32(hdr, ihl + kTcpSeqOff) + cur.delta());
      break;
  }
  if ((changes & kNewI) != 0) {
    wr16(hdr, kIpId, static_cast<u16>(rd16(hdr, kIpId) + cur.delta()));
  } else {
    wr16(hdr, kIpId, static_cast<u16>(rd16(hdr, kIpId) + 1));
  }
  hdr[ihl + kTcpFlags] = flags;

  if (!cur.ok) {
    ++stats_.errors;
    toss_ = true;
    return std::nullopt;
  }

  const std::size_t data_len = packet.size() - cur.pos;
  wr16(hdr, kIpLen, static_cast<u16>(hdr.size() + data_len));
  refresh_ip_checksum(hdr, ihl);

  last_slot_ = slot;
  Bytes datagram;
  datagram.reserve(hdr.size() + data_len);
  append(datagram, hdr);
  append(datagram, BytesView(packet.data() + cur.pos, data_len));
  return datagram;
}

// ---- synthesis ---------------------------------------------------------

Bytes build_tcp_datagram(u32 src, u32 dst, u16 ip_id, u8 ttl, const TcpFields& tcp,
                         BytesView payload) {
  Bytes segment;
  segment.reserve(20 + payload.size());
  put_be16(segment, tcp.src_port);
  put_be16(segment, tcp.dst_port);
  put_be32(segment, tcp.seq);
  put_be32(segment, tcp.ack);
  segment.push_back(5 << 4);  // data offset: 5 words, no options
  segment.push_back(tcp.flags);
  put_be16(segment, tcp.window);
  put_be16(segment, 0);  // checksum placeholder
  put_be16(segment, tcp.urgent);
  append(segment, payload);

  // TCP checksum over the RFC 793 pseudo-header + segment.
  Bytes pseudo;
  pseudo.reserve(12 + segment.size());
  put_be32(pseudo, src);
  put_be32(pseudo, dst);
  pseudo.push_back(0);
  pseudo.push_back(kIpProtoTcp);
  put_be16(pseudo, static_cast<u16>(segment.size()));
  append(pseudo, segment);
  const u16 tcp_cksum = ones_complement_checksum(pseudo);
  wr16(segment, kTcpCksum, tcp_cksum);

  Bytes datagram;
  datagram.reserve(20 + segment.size());
  datagram.push_back(0x45);  // v4, ihl 5
  datagram.push_back(0);     // tos
  put_be16(datagram, static_cast<u16>(20 + segment.size()));
  put_be16(datagram, ip_id);
  put_be16(datagram, 0x4000);  // DF, offset 0
  datagram.push_back(ttl);
  datagram.push_back(kIpProtoTcp);
  put_be16(datagram, 0);  // checksum placeholder
  put_be32(datagram, src);
  put_be32(datagram, dst);
  wr16(datagram, kIpCksum, ones_complement_checksum(BytesView(datagram.data(), 20)));
  append(datagram, segment);
  return datagram;
}

TcpFlowGen::TcpFlowGen(unsigned flows, u64 seed, std::size_t max_payload)
    : rng_(seed), max_payload_(std::max<std::size_t>(max_payload, 16)) {
  for (unsigned i = 0; i < flows; ++i) {
    Flow f;
    f.src = 0x0A000000u + i + 1;
    f.dst = 0x0A800000u + i + 1;
    f.fields.src_port = static_cast<u16>(1024 + rng_.below(40000));
    f.fields.dst_port = (i % 2) == 0 ? 443 : 22;
    f.fields.seq = static_cast<u32>(rng_.next());
    f.fields.ack = static_cast<u32>(rng_.next());
    f.fields.window = static_cast<u16>(4096 + rng_.below(32768));
    f.ip_id = static_cast<u16>(rng_.below(0x10000));
    f.bulk = (i % 2) == 0;
    f.burst = 1 + rng_.below(8);
    flows_.push_back(f);
  }
}

Bytes TcpFlowGen::next() {
  Flow& f = flows_[cursor_];
  if (--f.burst == 0) {
    f.burst = 1 + rng_.below(8);
    cursor_ = (cursor_ + 1) % flows_.size();
  }

  std::size_t payload_len;
  if (f.bulk) {
    // Steady unidirectional transfer: full segments, seq walks by payload.
    payload_len = max_payload_;
  } else {
    // Interactive: tiny segments, the peer's echo advances our ack too.
    payload_len = 1 + rng_.below(16);
    f.fields.ack += static_cast<u32>(payload_len);
  }

  f.fields.flags = kTcpAck;
  if (rng_.chance(0.2)) f.fields.flags |= kTcpPsh;
  if (rng_.chance(0.05))
    f.fields.window = static_cast<u16>(4096 + rng_.below(32768));  // window update

  Bytes payload;
  payload.reserve(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) payload.push_back(rng_.byte());

  const Bytes datagram =
      build_tcp_datagram(f.src, f.dst, f.ip_id, 64, f.fields, payload);
  f.fields.seq += static_cast<u32>(payload_len);
  ++f.ip_id;
  return datagram;
}

}  // namespace p5::ppp::vj
