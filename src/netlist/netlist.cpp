#include "netlist/netlist.hpp"

#include <algorithm>

namespace p5::netlist {

const char* to_string(Op op) {
  switch (op) {
    case Op::kInput: return "input";
    case Op::kConst0: return "const0";
    case Op::kConst1: return "const1";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kMux: return "mux";
    case Op::kDff: return "dff";
  }
  return "?";
}

NodeId Netlist::input(const std::string& label) {
  const NodeId id = static_cast<NodeId>(gates_.size());
  gates_.push_back(Gate{Op::kInput, {}});
  inputs_.push_back(id);
  input_labels_.push_back(label);
  return id;
}

NodeId Netlist::constant(bool value) {
  const NodeId id = static_cast<NodeId>(gates_.size());
  gates_.push_back(Gate{value ? Op::kConst1 : Op::kConst0, {}});
  return id;
}

NodeId Netlist::gate(Op op, std::vector<NodeId> fanin) {
  P5_EXPECTS(op != Op::kInput && op != Op::kDff);
  for (const NodeId f : fanin) P5_EXPECTS(f < gates_.size());
  switch (op) {
    case Op::kNot: P5_EXPECTS(fanin.size() == 1); break;
    case Op::kMux: P5_EXPECTS(fanin.size() == 3); break;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor: P5_EXPECTS(!fanin.empty()); break;
    default: break;
  }
  const NodeId id = static_cast<NodeId>(gates_.size());
  gates_.push_back(Gate{op, std::move(fanin)});
  return id;
}

NodeId Netlist::dff(NodeId d) {
  P5_EXPECTS(d == kInvalidNode || d < gates_.size());
  const NodeId id = static_cast<NodeId>(gates_.size());
  gates_.push_back(Gate{Op::kDff, d == kInvalidNode ? std::vector<NodeId>{}
                                                    : std::vector<NodeId>{d}});
  dffs_.push_back(id);
  return id;
}

void Netlist::set_dff_input(NodeId dff_node, NodeId d) {
  P5_EXPECTS(dff_node < gates_.size() && gates_[dff_node].op == Op::kDff);
  P5_EXPECTS(d < gates_.size());
  gates_[dff_node].fanin.assign(1, d);
}

void Netlist::output(NodeId node, const std::string& label) {
  P5_EXPECTS(node < gates_.size());
  outputs_.push_back(node);
  output_labels_.push_back(label);
}

std::vector<u32> Netlist::fanout_counts() const {
  std::vector<u32> counts(gates_.size(), 0);
  for (const Gate& g : gates_)
    for (const NodeId f : g.fanin) ++counts[f];
  for (const NodeId o : outputs_) ++counts[o];
  return counts;
}

NodeId Netlist::absorb(const Netlist& other) {
  const NodeId offset = static_cast<NodeId>(gates_.size());
  for (const Gate& g : other.gates_) {
    Gate copy = g;
    for (NodeId& f : copy.fanin) f += offset;
    gates_.push_back(std::move(copy));
  }
  for (std::size_t i = 0; i < other.inputs_.size(); ++i) {
    inputs_.push_back(other.inputs_[i] + offset);
    input_labels_.push_back(other.name_ + "." + other.input_labels_[i]);
  }
  for (const NodeId d : other.dffs_) dffs_.push_back(d + offset);
  for (std::size_t i = 0; i < other.outputs_.size(); ++i) {
    outputs_.push_back(other.outputs_[i] + offset);
    output_labels_.push_back(other.name_ + "." + other.output_labels_[i]);
  }
  return offset;
}

// ---- simulation ----

Netlist::Sim::Sim(const Netlist& nl) : nl_(nl) {
  values_.assign(nl.gates_.size(), 0);
  dff_state_.assign(nl.gates_.size(), 0);

  // Topological order of combinational gates (inputs/consts/DFF outputs are
  // sources). Iterative DFS with cycle detection.
  std::vector<u8> mark(nl.gates_.size(), 0);  // 0=unvisited 1=on-stack 2=done
  topo_.reserve(nl.gates_.size());
  std::vector<std::pair<NodeId, std::size_t>> stack;

  for (NodeId root = 0; root < nl.gates_.size(); ++root) {
    if (mark[root]) continue;
    const Op rop = nl.gates_[root].op;
    if (rop == Op::kInput || rop == Op::kDff || rop == Op::kConst0 || rop == Op::kConst1) {
      mark[root] = 2;
      continue;
    }
    stack.emplace_back(root, 0);
    mark[root] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const Gate& g = nl.gates_[node];
      if (idx < g.fanin.size()) {
        const NodeId f = g.fanin[idx++];
        const Op fop = nl.gates_[f].op;
        if (fop == Op::kInput || fop == Op::kDff || fop == Op::kConst0 || fop == Op::kConst1) {
          mark[f] = 2;
          continue;
        }
        if (mark[f] == 1) throw ContractViolation("combinational cycle in netlist " + nl.name_);
        if (mark[f] == 0) {
          mark[f] = 1;
          stack.emplace_back(f, 0);
        }
      } else {
        mark[node] = 2;
        topo_.push_back(node);
        stack.pop_back();
      }
    }
  }
}

void Netlist::Sim::set_input(std::size_t i, bool v) {
  P5_EXPECTS(i < nl_.inputs_.size());
  values_[nl_.inputs_[i]] = v ? 1 : 0;
}

void Netlist::Sim::eval() {
  // Sources first.
  for (NodeId id = 0; id < nl_.gates_.size(); ++id) {
    const Op op = nl_.gates_[id].op;
    if (op == Op::kDff)
      values_[id] = dff_state_[id];
    else if (op == Op::kConst0)
      values_[id] = 0;
    else if (op == Op::kConst1)
      values_[id] = 1;
  }
  for (const NodeId id : topo_) {
    const Gate& g = nl_.gates_[id];
    switch (g.op) {
      case Op::kAnd: {
        char v = 1;
        for (const NodeId f : g.fanin) v = static_cast<char>(v & values_[f]);
        values_[id] = v;
        break;
      }
      case Op::kOr: {
        char v = 0;
        for (const NodeId f : g.fanin) v = static_cast<char>(v | values_[f]);
        values_[id] = v;
        break;
      }
      case Op::kXor: {
        char v = 0;
        for (const NodeId f : g.fanin) v = static_cast<char>(v ^ values_[f]);
        values_[id] = v;
        break;
      }
      case Op::kNot:
        values_[id] = static_cast<char>(1 - values_[g.fanin[0]]);
        break;
      case Op::kMux:
        values_[id] = values_[g.fanin[0]] ? values_[g.fanin[2]] : values_[g.fanin[1]];
        break;
      default:
        break;
    }
  }
}

void Netlist::Sim::clock() {
  for (const NodeId id : nl_.dffs_) {
    const Gate& g = nl_.gates_[id];
    P5_ASSERT(!g.fanin.empty());  // every DFF must have its D wired by now
    dff_state_[id] = values_[g.fanin[0]];
  }
}

bool Netlist::Sim::output(std::size_t i) const {
  P5_EXPECTS(i < nl_.outputs_.size());
  return values_[nl_.outputs_[i]] != 0;
}

void Netlist::Sim::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(dff_state_.begin(), dff_state_.end(), 0);
}

}  // namespace p5::netlist
