// Minimal property-based test runner: seeded case generation, size growth,
// shrinking by halving, and a per-case seed printed on every failure so any
// red run reproduces from its log line.
//
// Seeds resolve through the environment: P5_TEST_SEED overrides the base
// seed and P5_TEST_CASES overrides the case count, so
//
//   P5_TEST_SEED=0xDEADBEEF ctest -R test_conformance
//
// replays the exact stream a CI failure reported. See TESTING.md.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "hdlc/frame.hpp"

namespace p5::testing {

struct PropertyOptions {
  u64 cases = 200;            ///< overridden by P5_TEST_CASES
  u64 seed = 0x5EEDF00Dull;   ///< base seed; overridden by P5_TEST_SEED
  std::size_t min_size = 1;   ///< generator size of the first case
  std::size_t max_size = 256; ///< generator size of the last case (linear ramp)
};

/// One generated case: a dedicated rng (derived from base seed and case
/// index, independent of every other case) plus the size hint the body's
/// generators should respect. Call fail() to flunk the case.
struct CaseContext {
  u64 index = 0;
  u64 seed = 0;          ///< the case's own derived seed
  std::size_t size = 0;  ///< generator size hint (this is what shrinking halves)
  Xoshiro256 rng{0};

  void fail(std::string msg) {
    failed = true;
    if (message.empty()) message = std::move(msg);
  }

  bool failed = false;
  std::string message;
};

struct PropertyResult {
  bool ok = true;
  u64 cases_run = 0;
  u64 failing_case = 0;
  u64 failing_seed = 0;
  std::size_t failing_size = 0;  ///< size after shrinking
  std::string message;           ///< full report: case seed, sizes, repro line

  explicit operator bool() const { return ok; }
};

/// Base seed / case count after applying the environment overrides.
[[nodiscard]] u64 resolved_seed(u64 fallback);
[[nodiscard]] u64 resolved_cases(u64 fallback);

/// Run `body` over `opt.cases` generated cases. On the first failure, shrink
/// by halving the size hint (re-running the same case seed) until the
/// property passes again, and report the smallest size that still failed.
[[nodiscard]] PropertyResult check_property(std::string_view name, const PropertyOptions& opt,
                                            const std::function<void(CaseContext&)>& body);

// ---- shared generators -------------------------------------------------

/// Payload of exactly `size` octets, escape/flag dense enough that stuffing,
/// delineation and the byte sorters all do real work.
[[nodiscard]] Bytes gen_payload(Xoshiro256& rng, std::size_t size);

/// An RFC 1661 assigned-style protocol number (even high octet, odd low).
[[nodiscard]] u16 gen_protocol(Xoshiro256& rng);

/// A random-but-valid framing config (ACFC/PFC/FCS/ACCM varied).
[[nodiscard]] hdlc::FrameConfig gen_frame_config(Xoshiro256& rng);

}  // namespace p5::testing
