// E6a — Throughput: the paper's headline rates (625 Mbps for the 8-bit P5,
// 2.5 Gbps for the 32-bit P5 at 78.125 MHz) measured on the cycle-accurate
// model, swept across datapath widths and escape densities.
//
// Escape density is the stressor for the byte sorter: every escaped octet
// doubles on the wire, so at density d the payload rate cannot exceed
// width / (1 + d) bits per cycle — the bench shows the model tracking that
// bound while the backpressure scheme keeps the pipeline lossless.
//
// Besides the stdout table, results land in BENCH_throughput.json with the
// same machine-readable shape as BENCH_softpath.json / BENCH_linecard.json.
//
// Usage: bench_throughput [--smoke] [--out <path>]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace p5::bench {
namespace {

struct Row {
  unsigned width_bits = 0;
  double escape_density = 0.0;
  double payload_bytes_per_cycle = 0.0;
  double payload_gbps = 0.0;
  double line_util = 0.0;        ///< payload octets / wire octets
  double backpressure_frac = 0.0;
  std::size_t peak_queue = 0;
};

bool write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"throughput\",\n  \"unit\": \"Gbps\",\n  \"clock_mhz\": 78.125,\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"width_bits\": " << r.width_bits << ", \"escape_density\": " << r.escape_density
        << ", \"payload_bytes_per_cycle\": " << r.payload_bytes_per_cycle
        << ", \"payload_gbps\": " << r.payload_gbps << ", \"line_util\": " << r.line_util
        << ", \"backpressure_frac\": " << r.backpressure_frac
        << ", \"peak_queue\": " << r.peak_queue << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const std::size_t frames = smoke ? 2 : 12;

  banner("E6a / bench_throughput — sustained rate vs width and escape density",
         "Section 1/5 rate claims: 8-bit P5 = 625 Mbps, 32-bit P5 = 2.5 Gbps");
  paper_says(
      "one word per clock through every stage: 8 bits x 78.125 MHz = 625 Mbps; "
      "32 bits x 78.125 MHz = 2.5 Gbps. Escaped octets consume extra wire cycles.");

  const double clock_mhz = 78.125;
  std::printf("\nclock: %.3f MHz (2.5 Gbps / 32 bits)\n", clock_mhz);
  std::printf("\n width | density | payload B/cyc | payload Gbps | line util | backpress | peakQ\n");
  std::printf(" ------+---------+---------------+--------------+-----------+-----------+------\n");

  std::vector<Row> rows;
  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    for (const double density : {0.0, 1.0 / 128.0, 0.1, 0.25, 0.5, 1.0}) {
      const auto r = measure_tx_throughput(lanes, density, frames, 1500);
      Row row;
      row.width_bits = lanes * 8;
      row.escape_density = density;
      row.payload_bytes_per_cycle = r.payload_bytes_per_cycle();
      row.payload_gbps = r.payload_gbps(clock_mhz);
      row.line_util =
          static_cast<double>(r.payload_octets) / static_cast<double>(r.wire_octets);
      row.backpressure_frac = r.backpressure_frac;
      row.peak_queue = r.peak_queue;
      rows.push_back(row);
      std::printf("  %2u-b | %6.3f  | %13.3f | %12.3f | %8.1f%% | %8.1f%% | %3zu/%zu\n",
                  row.width_bits, density, row.payload_bytes_per_cycle, row.payload_gbps,
                  100.0 * row.line_util, 100.0 * row.backpressure_frac, row.peak_queue,
                  static_cast<std::size_t>(3 * lanes));
    }
    std::printf("\n");
  }

  if (!write_json(rows, out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)%s\n\n", out_path.c_str(), rows.size(),
              smoke ? " [smoke mode: timings are not meaningful]" : "");

  // Paper-vs-measured summary rows at near-zero escape density.
  const auto r8 = measure_tx_throughput(1, 0.0, frames, 1500);
  const auto r32 = measure_tx_throughput(4, 0.0, frames, 1500);
  paper_says("8-bit P5: 625 Mbps");
  we_measure(std::to_string(r8.payload_gbps(clock_mhz) * 1000.0) + " Mbps payload");
  paper_says("32-bit P5: 2.5 Gbps");
  we_measure(std::to_string(r32.payload_gbps(clock_mhz)) + " Gbps payload");
  return 0;
}

}  // namespace
}  // namespace p5::bench

int main(int argc, char** argv) { return p5::bench::run(argc, argv); }
