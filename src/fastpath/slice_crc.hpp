// Slicing-by-16 CRC: sixteen interleaved 256-entry tables, sixteen octets per
// iteration — the software analogue of the paper's parallel CRC matrix, which
// widens the hardware FCS unit from one to four bytes per clock.
//
// Works for any reflected CRC of width <= 32 described by a CrcSpec (both the
// PPP FCS-16 and FCS-32 checks). Table k advances one data byte followed by k
// zero bytes, so by GF(2)-linearity of the shift-register step
//
//   update(S, b0..b15) = T15[(S^b0) & FF] ^ T14[((S>>8)^b1) & FF]
//                      ^ T13[((S>>16)^b2) & FF] ^ T12[((S>>24)^b3) & FF]
//                      ^ T11[b4] ^ ... ^ T0[b15]
//
// The sixteen lookups per iteration are mutually independent, so the loop is
// bound by load throughput, not the 8-byte fold's dependence chain. Verified
// byte-for-byte against the bit-serial golden model in tests/test_fastpath.cpp.
#pragma once

#include "common/types.hpp"
#include "crc/crc_reference.hpp"
#include "crc/crc_spec.hpp"

namespace p5::fastpath {

class SliceCrc {
 public:
  explicit constexpr SliceCrc(const crc::CrcSpec& spec) : spec_(spec) {
    for (u32 b = 0; b < 256; ++b) t_[0][b] = crc::bitwise_step(spec, 0, static_cast<u8>(b));
    for (int k = 1; k < 16; ++k)
      for (u32 b = 0; b < 256; ++b) t_[k][b] = (t_[k - 1][b] >> 8) ^ t_[0][t_[k - 1][b] & 0xFFu];
  }

  [[nodiscard]] const crc::CrcSpec& spec() const { return spec_; }

  /// Advance the raw register by one byte (table-driven, for tails and fused
  /// per-octet paths).
  [[nodiscard]] constexpr u32 update_byte(u32 state, u8 b) const {
    return (state >> 8) ^ t_[0][(state ^ b) & 0xFFu];
  }

  /// Advance the raw register over a buffer, sixteen bytes per iteration.
  [[nodiscard]] u32 update(u32 state, BytesView data) const {
    const u8* p = data.data();
    std::size_t n = data.size();
    while (n >= 16) {
      const u32 a = state ^ (static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
                             static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24);
      const u32 b = static_cast<u32>(p[4]) | static_cast<u32>(p[5]) << 8 |
                    static_cast<u32>(p[6]) << 16 | static_cast<u32>(p[7]) << 24;
      const u32 c = static_cast<u32>(p[8]) | static_cast<u32>(p[9]) << 8 |
                    static_cast<u32>(p[10]) << 16 | static_cast<u32>(p[11]) << 24;
      const u32 d = static_cast<u32>(p[12]) | static_cast<u32>(p[13]) << 8 |
                    static_cast<u32>(p[14]) << 16 | static_cast<u32>(p[15]) << 24;
      state = t_[15][a & 0xFFu] ^ t_[14][(a >> 8) & 0xFFu] ^ t_[13][(a >> 16) & 0xFFu] ^
              t_[12][a >> 24] ^ t_[11][b & 0xFFu] ^ t_[10][(b >> 8) & 0xFFu] ^
              t_[9][(b >> 16) & 0xFFu] ^ t_[8][b >> 24] ^ t_[7][c & 0xFFu] ^
              t_[6][(c >> 8) & 0xFFu] ^ t_[5][(c >> 16) & 0xFFu] ^ t_[4][c >> 24] ^
              t_[3][d & 0xFFu] ^ t_[2][(d >> 8) & 0xFFu] ^ t_[1][(d >> 16) & 0xFFu] ^
              t_[0][d >> 24];
      p += 16;
      n -= 16;
    }
    while (n >= 8) {
      const u32 lo = state ^ (static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
                              static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24);
      const u32 hi = static_cast<u32>(p[4]) | static_cast<u32>(p[5]) << 8 |
                     static_cast<u32>(p[6]) << 16 | static_cast<u32>(p[7]) << 24;
      state = t_[7][lo & 0xFFu] ^ t_[6][(lo >> 8) & 0xFFu] ^ t_[5][(lo >> 16) & 0xFFu] ^
              t_[4][lo >> 24] ^ t_[3][hi & 0xFFu] ^ t_[2][(hi >> 8) & 0xFFu] ^
              t_[1][(hi >> 16) & 0xFFu] ^ t_[0][hi >> 24];
      p += 8;
      n -= 8;
    }
    for (; n != 0; --n, ++p) state = update_byte(state, *p);
    return state & spec_.mask();
  }

 private:
  crc::CrcSpec spec_;
  u32 t_[16][256]{};
};

}  // namespace p5::fastpath
