#include "sonet/scrambler.hpp"

#include "fastpath/scrambler_tables.hpp"

namespace p5::sonet {

u8 FrameScrambler::next_keystream() {
  const auto& step = fastpath::frame_scrambler_steps()[state_];
  state_ = step.next;
  return step.keystream;
}

void FrameScrambler::apply(Bytes& data, std::size_t begin, std::size_t end) {
  const auto& table = fastpath::frame_scrambler_steps();
  for (std::size_t i = begin; i < end && i < data.size(); ++i) {
    const auto& step = table[state_];
    data[i] ^= step.keystream;
    state_ = step.next;
  }
}

Bytes SelfSyncScrambler43::scramble(BytesView data) {
  Bytes out;
  out.reserve(data.size());
  for (const u8 b : data) out.push_back(scramble(b));
  return out;
}

Bytes SelfSyncScrambler43::descramble(BytesView data) {
  Bytes out;
  out.reserve(data.size());
  for (const u8 b : data) out.push_back(descramble(b));
  return out;
}

void SelfSyncScrambler43::scramble_in_place(Bytes& data) {
  for (u8& b : data) b = scramble(b);
}

void SelfSyncScrambler43::descramble_in_place(Bytes& data) {
  for (u8& b : data) b = descramble(b);
}

}  // namespace p5::sonet
