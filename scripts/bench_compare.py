#!/usr/bin/env python3
"""Gate a fresh BENCH_*.json against the committed baseline.

Compares per-cell results — a cell is (kernel, frame_bytes, escape_density,
dispatch, pinned) — and exits nonzero when any cell regresses by more than
the tolerance. When --tolerance is omitted the default is per-bench: 15%
for the machine-normalised kernels, 80% for the wall-clock "tunnel" bench
(absolute socket+model throughput on shared CI swings wildly; the gate only
catches order-of-magnitude collapses).

The default metric is `speedup` (new path / seed scalar path, measured in
the same run), which is a machine-normalised ratio: absolute MB/s differ
wildly between the committed baseline's host and a CI runner, but the ratio
only collapses when something real breaks — a dispatch tier silently
disabled, a kernel pessimised. Use --metric new_mb_s for same-host
comparisons where absolute throughput matters.

Cells present in the baseline but missing from the fresh run are warnings by
default (a host without AVX2 cannot produce avx2-pinned rows); --strict
turns them into failures. Cells only in the fresh run warn but never fail —
a new kernel, tier, or workload row is not a regression, but naming it keeps
"the baseline needs regenerating" visible in CI logs. Likewise a bench-name
mismatch between the two files (e.g. a fresh BENCH_capture.json gated
against an older baseline that predates the bench) warns and compares
whatever cells do line up rather than failing outright.

Usage:
  scripts/bench_compare.py FRESH.json BASELINE.json [--tolerance 0.15]
                           [--metric speedup|new_mb_s|old_mb_s] [--strict]

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys

# Default --tolerance per baseline "bench" field; 0.15 otherwise. Wall-clock
# benches get loose gates, ratio benches tight ones.
PER_BENCH_TOLERANCE = {
    "tunnel": 0.80,
    "server": 0.80,
    "session": 0.80,
    "capture": 0.80,
}


def cell_key(row):
    return (
        row.get("kernel"),
        row.get("frame_bytes"),
        row.get("escape_density"),
        row.get("dispatch", ""),
        row.get("tier", ""),
        bool(row.get("pinned", False)),
    )


def fmt_key(key):
    kernel, size, density, dispatch, tier, pinned = key
    s = f"{kernel} @ {size}B density={density}"
    if dispatch:
        s += f" dispatch={dispatch}"
    if tier and tier != "-":
        s += f" tier={tier}"
    if pinned:
        s += " [pinned]"
    return s


def load_results(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"bench_compare: {path} has no results[]")
    table = {}
    for row in rows:
        key = cell_key(row)
        if key in table:
            sys.exit(f"bench_compare: {path} has duplicate cell {fmt_key(key)}")
        table[key] = row
    return doc, table


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly generated BENCH_*.json")
    ap.add_argument("baseline", help="committed baseline BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="allowed fractional drop per cell (default: per-bench, "
                         "0.15 unless listed in PER_BENCH_TOLERANCE)")
    ap.add_argument("--metric", default="speedup",
                    choices=["speedup", "new_mb_s", "old_mb_s", "frames_per_syscall"],
                    help="field compared per cell (default: speedup). "
                         "frames_per_syscall gates the batched transport's "
                         "syscall amortisation (tunnel/server benches only); "
                         "cells that never recorded the field are skipped")
    ap.add_argument("--strict", action="store_true",
                    help="baseline cells missing from the fresh run fail the gate")
    args = ap.parse_args()
    if args.tolerance is not None and not 0.0 <= args.tolerance < 1.0:
        ap.error("--tolerance must be in [0, 1)")

    fresh_doc, fresh = load_results(args.fresh)
    base_doc, baseline = load_results(args.baseline)
    fresh_bench = fresh_doc.get("bench")
    base_bench = base_doc.get("bench")
    if fresh_bench and base_bench and fresh_bench != base_bench:
        print(f"bench_compare: warning: bench name mismatch: fresh is "
              f"'{fresh_bench}', baseline is '{base_bench}' — comparing "
              f"whatever cells line up; regenerate the baseline")
    if args.tolerance is None:
        bench = base_bench or fresh_bench
        args.tolerance = PER_BENCH_TOLERANCE.get(bench, 0.15)

    regressions = []
    missing = []
    compared = 0
    for key, base_row in sorted(baseline.items(), key=lambda kv: fmt_key(kv[0])):
        fresh_row = fresh.get(key)
        if fresh_row is None:
            missing.append(key)
            continue
        base_val = base_row.get(args.metric, 0.0)
        fresh_val = fresh_row.get(args.metric, 0.0)
        compared += 1
        if base_val <= 0:
            continue  # nothing meaningful to gate on
        floor = base_val * (1.0 - args.tolerance)
        if fresh_val < floor:
            regressions.append((key, base_val, fresh_val))

    # Rows only the fresh run produced: warn, never fail — a new kernel or
    # workload is not a regression, but it does mean the committed baseline
    # no longer covers the bench.
    extra = [key for key in sorted(fresh, key=fmt_key) if key not in baseline]
    for key in extra:
        print(f"bench_compare: warning: fresh cell absent from baseline "
              f"(ungated): {fmt_key(key)}")

    for key in missing:
        level = "error" if args.strict else "warning"
        print(f"bench_compare: {level}: baseline cell missing from fresh run: {fmt_key(key)}")
    for key, base_val, fresh_val in regressions:
        drop = 100.0 * (1.0 - fresh_val / base_val)
        print(f"bench_compare: REGRESSION {fmt_key(key)}: {args.metric} "
              f"{base_val:.3f} -> {fresh_val:.3f} (-{drop:.1f}%, tolerance "
              f"{100.0 * args.tolerance:.0f}%)")

    verdict_fail = bool(regressions) or (args.strict and missing)
    print(f"bench_compare: {compared} cells compared, {len(regressions)} regressions, "
          f"{len(missing)} missing, {len(extra)} ungated "
          f"({args.metric}, tolerance {100.0 * args.tolerance:.0f}%)"
          f" -> {'FAIL' if verdict_fail else 'OK'}")
    return 1 if verdict_fail else 0


if __name__ == "__main__":
    sys.exit(main())
