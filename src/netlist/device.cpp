#include "netlist/device.hpp"

namespace p5::netlist {

// Delay calibration:
//  * Virtex -4 (0.22 um): ~0.6 ns LUT, ~1.1/1.6 ns net (pre/post estimate);
//  * Virtex-II -6 (0.15/0.12 um): ~0.38 ns LUT, ~0.65/0.95 ns net.
// With the 6-LUT critical path the paper reports, these give ~75 MHz on
// Virtex (just under the 78.125 MHz a 2.5 Gbps 32-bit datapath needs) and
// ~125 MHz on Virtex-II (comfortably above) — the paper's Section 4/5 story.

const Device& xcv50_4() {
  static const Device d{"XCV50-4", 1536, 1536, 0.60, 1.10, 1.60};
  return d;
}

const Device& xcv600_4() {
  static const Device d{"XCV600-4", 13824, 13824, 0.60, 1.10, 1.60};
  return d;
}

const Device& xc2v40_6() {
  static const Device d{"XC2V40-6", 512, 512, 0.38, 0.65, 0.95};
  return d;
}

const Device& xc2v1000_6() {
  static const Device d{"XC2V1000-6", 10240, 10240, 0.38, 0.65, 0.95};
  return d;
}

const std::vector<Device>& all_devices() {
  static const std::vector<Device> v{xcv50_4(), xcv600_4(), xc2v40_6(), xc2v1000_6()};
  return v;
}

}  // namespace p5::netlist
