file(REMOVE_RECURSE
  "CMakeFiles/test_lqm.dir/test_lqm.cpp.o"
  "CMakeFiles/test_lqm.dir/test_lqm.cpp.o.d"
  "test_lqm"
  "test_lqm.pdb"
  "test_lqm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lqm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
