// A complete software PPP endpoint: LCP + authentication + IPCP (with VJ
// header compression) over HDLC-like framing.
//
// This is the control-plane companion to the P5 datapath: examples and the
// end-to-end tests connect two PppEndpoints back to back (directly, or
// through the SONET substrate / P5 cycle model), negotiate the link, then
// move IPv4 datagrams. The negotiated LCP result is applied to the frame
// configuration the same way the paper's host microprocessor would program
// the OAM registers.
//
// Phase progression follows RFC 1661 §3.2: Establish (LCP), then an
// Authentication phase when either side carried the Authentication-Protocol
// option, then Network (IPCP + IP traffic). When IPCP negotiated VJ
// compression, TCP datagrams ride protocols 0x002d/0x002f transparently —
// send_ip() compresses, the receive path decompresses before the ip sink.
//
// Two wire modes:
//   * octet mode (default): the endpoint owns HDLC framing — wire_tx emits
//     flag-delimited octets, wire_rx feeds a delineator.
//   * packet mode: framing belongs to the device underneath (a
//     core::SonetEndpoint); the endpoint exchanges (protocol, information)
//     pairs via a PacketTx hook and deliver_packet().
#pragma once

#include <functional>
#include <memory>

#include "common/types.hpp"
#include "hdlc/delineation.hpp"
#include "hdlc/frame.hpp"
#include "ppp/auth.hpp"
#include "ppp/ipcp.hpp"
#include "ppp/lcp.hpp"
#include "ppp/lqm.hpp"
#include "ppp/vj.hpp"

namespace p5::ppp {

enum class Phase : u8 { kDead, kEstablish, kAuth, kNetwork, kTerminate };

[[nodiscard]] const char* to_string(Phase p);

struct EndpointStats {
  u64 frames_tx = 0;
  u64 frames_rx = 0;
  u64 fcs_errors = 0;
  u64 unknown_protocols = 0;
  u64 datagrams_tx = 0;
  u64 datagrams_rx = 0;
  u64 dropped_not_open = 0;
  u64 vj_dropped = 0;  ///< VJ packets tossed by the decompressor
};

class PppEndpoint {
 public:
  /// Authentication-phase material; which machines actually run is decided
  /// by the LCP negotiation (lcp.require_auth and the peer's demand).
  struct AuthConfig {
    std::string identity;       ///< credentials we present when challenged
    std::string secret;
    std::string name = "p5";    ///< our system name in CHAP Challenges
    AuthPolicy policy;          ///< authenticator side: lookup + reject budget
    AuthTimeouts timeouts;
    bool auth_optional = false; ///< tolerate the peer rejecting our demand
  };

  struct Config {
    hdlc::FrameConfig frame;  ///< initial (pre-negotiation) framing
    LcpConfig lcp;
    IpcpConfig ipcp;
    AuthConfig auth;
    FsmTimeouts fsm_timeouts;  ///< restart/Max-* discipline for LCP and IPCP
  };

  /// Octet mode: `wire_tx` transmits raw octets (flags included) toward the peer.
  PppEndpoint(std::string name, Config cfg, std::function<void(BytesView)> wire_tx);

  /// Packet mode: framing is external; `packet_tx` carries (protocol,
  /// information) toward the device, deliver_packet() feeds the reverse path.
  using PacketTx = std::function<void(u16 protocol, BytesView info)>;
  PppEndpoint(std::string name, Config cfg, PacketTx packet_tx);

  /// Deliver received IPv4 datagrams here.
  void set_ip_sink(std::function<void(BytesView)> sink) { ip_sink_ = std::move(sink); }

  // ---- control ----
  void lower_up();    ///< PHY came up: starts LCP
  void lower_down();
  void open();        ///< administrative open
  void close();
  void tick();        ///< advance protocol timers one unit

  // ---- data ----
  /// Encapsulate and transmit one IPv4 datagram (drops unless Network phase).
  bool send_ip(BytesView datagram);

  /// Feed raw octets received from the wire (octet mode).
  void wire_rx(BytesView octets);

  /// Feed one deframed (protocol, information) pair (packet mode — the
  /// device already verified the FCS and stripped the framing).
  void deliver_packet(u16 protocol, BytesView info);

  // ---- introspection ----
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] bool ip_ready() const { return ipcp_ && ipcp_->is_opened(); }
  [[nodiscard]] const EndpointStats& stats() const { return stats_; }
  [[nodiscard]] Lcp& lcp() { return *lcp_; }
  [[nodiscard]] Ipcp& ipcp() { return *ipcp_; }
  /// Link-quality monitor; non-null once LCP opened with LQM negotiated
  /// (either side requested it).
  [[nodiscard]] LqmMonitor* lqm() { return lqm_.get(); }
  [[nodiscard]] const hdlc::FrameConfig& frame_config() const { return frame_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Combined authentication verdict: kSuccess when every negotiated auth
  /// machine succeeded (trivially so when none was negotiated and LCP is
  /// up); kFailed is final and tears the link down.
  [[nodiscard]] AuthResult auth_result() const { return auth_result_; }
  /// Identity the peer authenticated as (authenticator side; empty until then).
  [[nodiscard]] const std::string& authenticated_peer() const { return authenticated_peer_; }
  /// Auth machines for counter inspection; null when not negotiated.
  [[nodiscard]] AuthMachine* authenticator() { return auth_server_.get(); }
  [[nodiscard]] AuthMachine* authenticatee() { return auth_client_.get(); }

  /// VJ engines; null until IPCP opened with compression negotiated.
  [[nodiscard]] vj::Compressor* vj_compressor() { return vj_comp_.get(); }
  [[nodiscard]] vj::Decompressor* vj_decompressor() { return vj_decomp_.get(); }

 private:
  void init(Config cfg);
  void send_control(u16 protocol, const Packet& pkt);
  void send_frame(u16 protocol, BytesView info);
  void on_frame(BytesView stuffed_content);
  void dispatch(u16 protocol, BytesView info);
  void on_lcp_up(const LcpResult& result);
  void on_lcp_down();
  void start_auth_phase(const LcpResult& result);
  void deliver_auth(u16 protocol, BytesView info);
  void check_auth_progress();
  void enter_network_phase();

  std::string name_;
  hdlc::FrameConfig frame_;
  hdlc::FrameConfig negotiating_frame_;  ///< LCP always uses default framing
  std::function<void(BytesView)> wire_tx_;
  PacketTx packet_tx_;  ///< non-null selects packet mode
  std::function<void(BytesView)> ip_sink_;

  std::unique_ptr<Lcp> lcp_;
  std::unique_ptr<Ipcp> ipcp_;
  std::unique_ptr<LqmMonitor> lqm_;
  AuthConfig auth_cfg_;
  std::unique_ptr<AuthMachine> auth_server_;  ///< authenticates the peer
  std::unique_ptr<AuthMachine> auth_client_;  ///< authenticates us to the peer
  AuthResult auth_result_ = AuthResult::kPending;
  std::string authenticated_peer_;
  std::unique_ptr<vj::Compressor> vj_comp_;
  std::unique_ptr<vj::Decompressor> vj_decomp_;
  u32 requested_lqr_period_ = 0;
  hdlc::FrameArena tx_arena_;  ///< reusable scratch for zero-alloc encoding
  fastpath::EscapeEngine rx_engine_{hdlc::Accm::sonet()};  ///< dispatch derived once
  Bytes rx_scratch_;  ///< reusable destuff buffer (zero-alloc steady state)
  hdlc::Delineator delineator_;
  Phase phase_ = Phase::kDead;
  EndpointStats stats_;
};

}  // namespace p5::ppp
