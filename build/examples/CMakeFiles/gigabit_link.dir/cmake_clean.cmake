file(REMOVE_RECURSE
  "CMakeFiles/gigabit_link.dir/gigabit_link.cpp.o"
  "CMakeFiles/gigabit_link.dir/gigabit_link.cpp.o.d"
  "gigabit_link"
  "gigabit_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gigabit_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
