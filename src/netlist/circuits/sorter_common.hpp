// Shared structural pieces of the P5's data sorting mechanism, used by the
// escape units and by the flag-framing circuits: the resynchronisation
// shift-queue and small bus utilities.
#pragma once

#include <vector>

#include "netlist/builder.hpp"

namespace p5::netlist::circuits {

[[nodiscard]] std::size_t bits_for(std::size_t max_value);
[[nodiscard]] Bus trunc_bus(const Bus& bus, std::size_t w);
/// Flip bit 5 of an octet bus (the XOR-0x20 transparency transform).
[[nodiscard]] Bus flip_bit5(Netlist& nl, const Bus& byte);
/// Split a wide bus into `lanes` octet buses (lane 0 = first on the wire).
[[nodiscard]] std::vector<Bus> split_lanes(const Bus& word, unsigned lanes);

/// Output side of a byte sorter: a `cells`-octet shift-queue that absorbs up
/// to slots.size() sorted octets per cycle (`count` of them real, gated by a
/// thermometer decode) and emits `lanes` octets per cycle when full enough.
struct QueueResult {
  Bus out_word;      ///< registered output word (lanes*8)
  NodeId out_valid;  ///< registered
  NodeId accept;     ///< combinational: incoming word absorbed this cycle
  Bus occ;           ///< occupancy register (debug/stats)
};

[[nodiscard]] QueueResult build_resync_queue(Builder& b, unsigned lanes, std::size_t cells,
                                             const std::vector<Bus>& slots, const Bus& count,
                                             NodeId slots_valid);

}  // namespace p5::netlist::circuits
