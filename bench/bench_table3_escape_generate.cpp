// E3 — Paper Table 3: "Escape Generator Implementation" — the 32-bit and
// 8-bit Escape Generate modules synthesised alone to an XC2V40-6.
// Paper numbers: 32-bit = 492 LUTs (96%) / 168 FFs (32%);
//                 8-bit =  22 LUTs (4%)  /   6 FFs (~1%);
//                ratios ~25x LUTs / ~28x FFs.
#include <cstdio>

#include "bench_util.hpp"
#include "netlist/circuits/escape_circuits.hpp"
#include "netlist/circuits/p5_circuit.hpp"
#include "netlist/device.hpp"
#include "netlist/lut_mapper.hpp"

int main() {
  using namespace p5::netlist;
  p5::bench::banner("E3 / bench_table3_escape_generate — Escape Generate module alone",
                    "Table 3: Escape Generator on XC2V40-6");

  p5::bench::paper_says(
      "32-bit: 492 LUTs (96% of XC2V40), 168 FFs (32%); 8-bit: 22 LUTs, 6 FFs. "
      "The 32-bit module needs ~25x the combinational logic and ~28x the FFs.");

  const MapResult m32 = map_to_luts(circuits::make_escape_generate_circuit(4));
  const MapResult m8 = map_to_luts(circuits::make_escape_generate_circuit(1));
  const Device& dev = xc2v40_6();

  std::printf("\n  %-28s %10s %12s %8s\n", "module", "LUTs (util)", "FFs (util)", "depth");
  std::printf("  %-28s %6zu (%3.0f%%) %6zu (%3.0f%%) %6zu\n", "escape_generate 32-bit",
              m32.luts, dev.lut_utilisation(m32.luts), m32.ffs, dev.ff_utilisation(m32.ffs),
              m32.depth);
  std::printf("  %-28s %6zu (%3.0f%%) %6zu (%3.0f%%) %6zu\n", "escape_generate 8-bit", m8.luts,
              dev.lut_utilisation(m8.luts), m8.ffs, dev.ff_utilisation(m8.ffs), m8.depth);

  std::printf("\n32-bit/8-bit ratios: %.1fx LUTs (paper ~25x), %.1fx FFs (paper ~28x)\n",
              static_cast<double>(m32.luts) / static_cast<double>(m8.luts),
              static_cast<double>(m32.ffs) / static_cast<double>(m8.ffs));
  std::printf("combinational-heavy check: 32-bit LUTs/FFs = %.1f "
              "(paper: most LUTs used, <1/3 of FFs)\n",
              static_cast<double>(m32.luts) / static_cast<double>(m32.ffs));
  return 0;
}
