file(REMOVE_RECURSE
  "CMakeFiles/p5_common.dir/hexdump.cpp.o"
  "CMakeFiles/p5_common.dir/hexdump.cpp.o.d"
  "libp5_common.a"
  "libp5_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
