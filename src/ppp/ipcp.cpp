#include "ppp/ipcp.hpp"

#include "ppp/protocols.hpp"

namespace p5::ppp {

namespace {
Option address_option(u32 addr) {
  Option o;
  o.type = kOptIpAddress;
  put_be32(o.data, addr);
  return o;
}
}  // namespace

Ipcp::Ipcp(const IpcpConfig& cfg, TxHook tx, Timeouts timeouts)
    : Fsm("IPCP", kProtoIpcp, timeouts), cfg_(cfg), tx_(std::move(tx)) {}

void Ipcp::send_packet(const Packet& pkt) { tx_(kProtoIpcp, pkt); }

std::vector<Option> Ipcp::build_configure_options() {
  std::vector<Option> opts;
  if (ask_address_) opts.push_back(address_option(cfg_.local_address));
  return opts;
}

ConfigureVerdict Ipcp::judge_configure_request(const std::vector<Option>& options) {
  std::vector<Option> rejected;
  std::vector<Option> naked;
  u32 requested = 0;

  for (const Option& o : options) {
    if (o.type == kOptIpAddress && o.data.size() == 4) {
      requested = get_be32(o.data, 0);
      if (requested == 0) {
        if (cfg_.assign_peer_address != 0) {
          naked.push_back(address_option(cfg_.assign_peer_address));
        } else {
          rejected.push_back(o);  // we cannot assign addresses
        }
      } else if (requested == cfg_.local_address) {
        // Peer wants our address; push it elsewhere if we can.
        if (cfg_.assign_peer_address != 0) {
          naked.push_back(address_option(cfg_.assign_peer_address));
        } else {
          rejected.push_back(o);
        }
      }
    } else {
      rejected.push_back(o);
    }
  }

  ConfigureVerdict v;
  if (!rejected.empty()) {
    v.response_code = Code::kConfigureReject;
    v.response_options = std::move(rejected);
  } else if (!naked.empty()) {
    v.response_code = Code::kConfigureNak;
    v.response_options = std::move(naked);
  } else {
    v.ack = true;
    peer_address_ = requested;
  }
  return v;
}

void Ipcp::on_configure_ack(const std::vector<Option>&) {}

void Ipcp::on_configure_nak(const std::vector<Option>& options) {
  for (const Option& o : options) {
    if (o.type == kOptIpAddress && o.data.size() == 4) {
      const u32 suggested = get_be32(o.data, 0);
      if (suggested != 0) cfg_.local_address = suggested;
    }
  }
}

void Ipcp::on_configure_reject(const std::vector<Option>& options) {
  for (const Option& o : options) {
    if (o.type == kOptIpAddress) ask_address_ = false;
  }
}

void Ipcp::this_layer_up() {
  if (up_hook_) up_hook_(cfg_.local_address, peer_address_);
}

}  // namespace p5::ppp
