
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdlc/delineation.cpp" "src/hdlc/CMakeFiles/p5_hdlc.dir/delineation.cpp.o" "gcc" "src/hdlc/CMakeFiles/p5_hdlc.dir/delineation.cpp.o.d"
  "/root/repo/src/hdlc/frame.cpp" "src/hdlc/CMakeFiles/p5_hdlc.dir/frame.cpp.o" "gcc" "src/hdlc/CMakeFiles/p5_hdlc.dir/frame.cpp.o.d"
  "/root/repo/src/hdlc/stuffing.cpp" "src/hdlc/CMakeFiles/p5_hdlc.dir/stuffing.cpp.o" "gcc" "src/hdlc/CMakeFiles/p5_hdlc.dir/stuffing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crc/CMakeFiles/p5_crc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
