file(REMOVE_RECURSE
  "CMakeFiles/synthesis_report.dir/synthesis_report.cpp.o"
  "CMakeFiles/synthesis_report.dir/synthesis_report.cpp.o.d"
  "synthesis_report"
  "synthesis_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
