// Tooling tests: the VCD waveform writer (format correctness, change-only
// encoding, P5 integration) and the structural Verilog exporter.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/circuits/escape_circuits.hpp"
#include "crc/parallel_crc.hpp"
#include "netlist/circuits/control_circuits.hpp"
#include "netlist/circuits/crc_circuit.hpp"
#include "netlist/equiv.hpp"
#include "netlist/verilog.hpp"
#include "p5/p5.hpp"
#include "rtl/vcd.hpp"

namespace p5 {
namespace {

// ---- VCD ----

TEST(Vcd, HeaderDeclaresSignals) {
  rtl::VcdWriter vcd("testtop", 10.0);
  u64 x = 0;
  vcd.add_signal("alpha", 1, [&] { return x; });
  vcd.add_signal("beta", 8, [&] { return x * 3; });
  vcd.sample(0);
  const std::string s = vcd.str();
  EXPECT_NE(s.find("$scope module testtop $end"), std::string::npos);
  EXPECT_NE(s.find("$var wire 1 ! alpha $end"), std::string::npos);
  EXPECT_NE(s.find("$var wire 8 \" beta $end"), std::string::npos);
  EXPECT_NE(s.find("$timescale 10000 ps $end"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, OnlyChangesAreWritten) {
  rtl::VcdWriter vcd;
  u64 x = 0;
  vcd.add_signal("sig", 4, [&] { return x; });
  vcd.sample(0);  // initial value 0 written
  vcd.sample(1);  // no change: nothing written
  x = 5;
  vcd.sample(2);
  const std::string s = vcd.str();
  EXPECT_NE(s.find("#0\nb0 !"), std::string::npos);
  EXPECT_EQ(s.find("#1"), std::string::npos);  // silent cycle omitted
  EXPECT_NE(s.find("#2\nb101 !"), std::string::npos);
}

TEST(Vcd, ScalarEncoding) {
  rtl::VcdWriter vcd;
  u64 x = 1;
  vcd.add_signal("bit", 1, [&] { return x; });
  vcd.sample(3);
  EXPECT_NE(vcd.str().find("#3\n1!"), std::string::npos);
}

TEST(Vcd, P5TraceCapturesPipelineActivity) {
  core::P5Config cfg;
  cfg.lanes = 4;
  core::P5 dev(cfg);
  rtl::VcdWriter vcd("p5");
  dev.attach_trace(&vcd);
  dev.set_rx_sink([](core::RxDelivery) {});
  dev.submit_datagram(0x0021, Bytes(64, 0x7E));  // escape-heavy frame
  for (int k = 0; k < 200; ++k) dev.phy_push_rx(dev.phy_pull_tx(4));
  dev.drain_rx(50);
  const std::string s = vcd.str();
  EXPECT_NE(s.find("tx_escgen_queue_occ"), std::string::npos);
  EXPECT_NE(s.find("tx_frames"), std::string::npos);
  // The queue must have visibly changed value at least a few times.
  std::size_t changes = 0, pos = 0;
  while ((pos = s.find("\nb", pos + 1)) != std::string::npos) ++changes;
  EXPECT_GT(changes, 10u);
}

TEST(Vcd, WritesFile) {
  rtl::VcdWriter vcd;
  u64 x = 7;
  vcd.add_signal("v", 4, [&] { return x; });
  vcd.sample(0);
  const std::string path = "/tmp/p5_vcd_test.vcd";
  ASSERT_TRUE(vcd.write_file(path));
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

// ---- Verilog export ----

TEST(Verilog, EmitsWellFormedModule) {
  netlist::Netlist nl("demo circuit");
  netlist::Builder b(nl);
  const auto a = nl.input("a");
  const auto c = nl.input("b!7");  // label requiring sanitisation
  const auto x = nl.xor_(a, c);
  const auto q = nl.dff(x);
  nl.output(q, "q0");
  nl.output(nl.mux(a, c, q), "m");

  const std::string v = netlist::to_verilog(nl);
  EXPECT_NE(v.find("module demo_circuit ("), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire a"), std::string::npos);
  EXPECT_NE(v.find("input wire b_7"), std::string::npos);
  EXPECT_NE(v.find("output wire q0"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // The XOR and the mux both appear.
  EXPECT_NE(v.find("^"), std::string::npos);
  EXPECT_NE(v.find("?"), std::string::npos);
}

TEST(Verilog, DffBecomesNonBlockingAssign) {
  netlist::Netlist nl("ff");
  const auto d = nl.input("d");
  const auto q = nl.dff(d);
  nl.output(q, "q");
  const std::string v = netlist::to_verilog(nl);
  EXPECT_NE(v.find("<="), std::string::npos);
  EXPECT_NE(v.find("reg  n1"), std::string::npos);
}

TEST(Verilog, WholeEscapeUnitExports) {
  const netlist::Netlist nl = netlist::circuits::make_escape_generate_circuit(4);
  const std::string v = netlist::to_verilog(nl);
  // Sanity: every gate produced a line; the file is substantial.
  EXPECT_GT(v.size(), 50000u);
  EXPECT_NE(v.find("module escape_generate_32"), std::string::npos);
  // Port count: 32 data + valid inputs, 32 data + valid + ready + occ outs.
  std::size_t inputs = 0, pos = 0;
  while ((pos = v.find("input wire", pos + 1)) != std::string::npos) ++inputs;
  EXPECT_EQ(inputs, 1u /*clk*/ + 32u /*in*/ + 1u /*in_valid*/);
}

TEST(Verilog, ConstantsEmitted) {
  netlist::Netlist nl("c");
  nl.output(nl.constant(true), "one");
  nl.output(nl.constant(false), "zero");
  const std::string v = netlist::to_verilog(nl);
  EXPECT_NE(v.find("1'b1"), std::string::npos);
  EXPECT_NE(v.find("1'b0"), std::string::npos);
}


// ---- equivalence checking ----

/// An independently-constructed bit-serial CRC-32 circuit: eight chained
/// LFSR steps per clock, built gate by gate — the classic implementation the
/// parallel matrix is derived from. Same interface as make_crc_circuit(8).
netlist::Netlist make_serial_crc8_circuit() {
  using namespace netlist;
  Netlist nl("crc_serial_8");
  Builder b(nl);
  const Bus data = b.input_bus("d", 8);
  const NodeId enable = nl.input("enable");
  const NodeId init = nl.input("init");
  const Bus state = b.dff_bus(32);

  // state ^= data (low 8 bits), then 8 shift-with-feedback steps.
  Bus cur = state;
  for (unsigned bit = 0; bit < 8; ++bit) cur[bit] = nl.xor_(cur[bit], data[bit]);
  for (unsigned step = 0; step < 8; ++step) {
    const NodeId fb = cur[0];
    Bus next(32);
    for (unsigned i = 0; i + 1 < 32; ++i) next[i] = cur[i + 1];
    next[31] = nl.constant(false);
    for (unsigned i = 0; i < 32; ++i)
      if ((crc::kFcs32.poly >> i) & 1u) next[i] = nl.xor_(next[i], fb);
    cur = next;
  }

  Bus d_in(32);
  for (unsigned i = 0; i < 32; ++i) {
    const NodeId advanced = nl.mux(enable, state[i], cur[i]);
    d_in[i] = nl.mux(init, advanced, nl.constant((crc::kFcs32.init >> i) & 1u));
  }
  b.wire_dff_bus(state, d_in);
  b.output_bus(state, "crc");
  return nl;
}

TEST(Equiv, SerialAndMatrixCrcAreEquivalent) {
  // The Pei-Zukowski parallel matrix must compute exactly what eight chained
  // LFSR steps compute — verified gate-level against an independent circuit.
  const crc::ParallelCrc model(crc::kFcs32, 8);
  const netlist::Netlist matrix = netlist::circuits::make_crc_circuit(model);
  const netlist::Netlist serial = make_serial_crc8_circuit();
  const auto r = netlist::random_equivalence(matrix, serial, 2000, 3);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
  EXPECT_EQ(r.vectors_run, 2000u);
}

TEST(Equiv, SelfEquivalence) {
  const netlist::Netlist a = netlist::circuits::make_escape_generate_circuit(2);
  const netlist::Netlist b = netlist::circuits::make_escape_generate_circuit(2);
  EXPECT_TRUE(netlist::random_equivalence(a, b, 500, 9).equivalent);
}

TEST(Equiv, DetectsFunctionalDifference) {
  // Same interface, different polarity on one output: must be caught fast.
  netlist::Netlist a("x"), b("x");
  {
    const auto i0 = a.input("i");
    a.output(i0, "o");
  }
  {
    const auto i0 = b.input("i");
    b.output(b.not_(i0), "o");
  }
  const auto r = netlist::random_equivalence(a, b, 100, 1);
  EXPECT_FALSE(r.equivalent);
  EXPECT_NE(r.mismatch.find("'o'"), std::string::npos);
}

TEST(Equiv, DetectsInterfaceMismatch) {
  netlist::Netlist a("x"), b("x");
  a.output(a.input("p"), "o");
  b.output(b.input("q"), "o");
  const auto r = netlist::random_equivalence(a, b, 10, 1);
  EXPECT_FALSE(r.equivalent);
}

TEST(Equiv, ControlCircuitsSimulateCleanly) {
  // The schematic-level control/OAM circuits must at least be acyclic and
  // drivable (the Sim constructor throws on combinational loops).
  for (const unsigned lanes : {1u, 4u}) {
    for (netlist::Netlist nl : {netlist::circuits::make_tx_control_circuit(lanes),
                                netlist::circuits::make_rx_control_circuit(lanes),
                                netlist::circuits::make_flag_inserter_circuit(lanes),
                                netlist::circuits::make_flag_delineator_circuit(lanes)}) {
      netlist::Netlist::Sim sim(nl);
      for (std::size_t i = 0; i < nl.inputs().size(); ++i) sim.set_input(i, i % 2);
      sim.eval();
      sim.clock();
      sim.eval();
      SUCCEED();
    }
  }
}

}  // namespace
}  // namespace p5
