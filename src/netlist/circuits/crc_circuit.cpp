#include "netlist/circuits/crc_circuit.hpp"

#include "netlist/builder.hpp"

namespace p5::netlist::circuits {

Netlist make_crc_circuit(const crc::ParallelCrc& crc) {
  const auto& spec = crc.spec();
  const unsigned width = spec.width;
  const unsigned data_bits = crc.data_bits();

  Netlist nl("crc" + std::to_string(width) + "x" + std::to_string(data_bits));
  Builder b(nl);

  const Bus data = b.input_bus("d", data_bits);
  const NodeId enable = nl.input("enable");
  const NodeId init = nl.input("init");
  const Bus state = b.dff_bus(width);

  // next[r] = XOR of the matrix row's selected state and data bits.
  Bus next;
  next.reserve(width);
  for (unsigned r = 0; r < width; ++r) {
    Bus terms;
    const auto& row = crc.matrix().row(r);
    for (unsigned c = 0; c < width; ++c)
      if (row.get(c)) terms.push_back(state[c]);
    for (unsigned c = 0; c < data_bits; ++c)
      if (row.get(width + c)) terms.push_back(data[c]);
    next.push_back(terms.empty() ? nl.constant(false) : b.reduce_xor(terms));
  }

  // D input: init ? preset : (enable ? next : hold).
  Bus d;
  d.reserve(width);
  for (unsigned r = 0; r < width; ++r) {
    const NodeId advanced = nl.mux(enable, state[r], next[r]);
    const NodeId preset = nl.constant((spec.init >> r) & 1u);
    d.push_back(nl.mux(init, advanced, preset));
  }
  b.wire_dff_bus(state, d);
  b.output_bus(state, "crc");
  return nl;
}

Netlist make_crc_unit_circuit(const crc::CrcSpec& spec, unsigned lanes) {
  P5_EXPECTS(lanes >= 1);
  const unsigned width = spec.width;

  Netlist nl("crc_unit" + std::to_string(width) + "x" + std::to_string(lanes * 8));
  Builder b(nl);

  const Bus data = b.input_bus("d", 8 * lanes);
  const NodeId enable = nl.input("enable");
  const NodeId init = nl.input("init");
  std::size_t lc_bits = 1;
  while ((std::size_t{1} << lc_bits) < lanes + 1) ++lc_bits;
  const Bus lane_count = b.input_bus("lc", lc_bits);
  const Bus state = b.dff_bus(width);

  // One XOR-matrix instance per partial width, selected by lane_count.
  std::vector<NodeId> selects;
  std::vector<Bus> nexts;
  for (unsigned l = 1; l <= lanes; ++l) {
    const crc::ParallelCrc pc(spec, l * 8);
    Bus next;
    next.reserve(width);
    for (unsigned r = 0; r < width; ++r) {
      Bus terms;
      const auto& row = pc.matrix().row(r);
      for (unsigned c = 0; c < width; ++c)
        if (row.get(c)) terms.push_back(state[c]);
      for (unsigned c = 0; c < l * 8; ++c)
        if (row.get(width + c)) terms.push_back(data[c]);
      next.push_back(terms.empty() ? nl.constant(false) : b.reduce_xor(terms));
    }
    selects.push_back(b.eq_const(lane_count, l));
    nexts.push_back(std::move(next));
  }
  const Bus next = lanes == 1 ? nexts[0] : b.onehot_mux(selects, nexts);

  Bus d;
  d.reserve(width);
  for (unsigned r = 0; r < width; ++r) {
    const NodeId advanced = nl.mux(enable, state[r], next[r]);
    d.push_back(nl.mux(init, advanced, nl.constant((spec.init >> r) & 1u)));
  }
  b.wire_dff_bus(state, d);
  b.output_bus(state, "crc");
  return nl;
}

}  // namespace p5::netlist::circuits
