# Empty dependencies file for bench_fig5_escape_generate_reorg.
# This may be replaced when dependencies are built.
