#include "crc/crc_table.hpp"

namespace p5::crc {

const TableCrc& fcs16() {
  static const TableCrc t(kFcs16);
  return t;
}

const TableCrc& fcs32() {
  static const TableCrc t(kFcs32);
  return t;
}

}  // namespace p5::crc
