// Reference (golden-model) octet stuffing per RFC 1662 §4.2.
//
// The cycle-accurate Escape Generate / Escape Detect pipelines in src/p5 are
// verified word-for-word against these routines.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "hdlc/accm.hpp"

namespace p5::hdlc {

/// Transmit-side transparency: every flag/escape (and ACCM-selected control
/// character) becomes 0x7D followed by the octet XOR 0x20.
[[nodiscard]] Bytes stuff(BytesView data, const Accm& accm = Accm::sonet());

/// Count of octets that stuffing would add (used for buffer sizing math).
[[nodiscard]] std::size_t stuffing_expansion(BytesView data, const Accm& accm = Accm::sonet());

struct DestuffResult {
  Bytes data;
  bool ok = true;  ///< false on malformed input (dangling or invalid escape)
};

/// Receive-side inverse. Input must not contain flags (the delineator strips
/// them and reports 0x7D-0x7E aborts before destuffing). A dangling escape at
/// the end of the frame reports ok=false.
[[nodiscard]] DestuffResult destuff(BytesView data);

}  // namespace p5::hdlc
