// Randomised robustness sweeps ("fuzz" with deterministic seeds):
//  * corrupted wire streams must yield the *same* set of good frames from
//    the P5 receive pipeline and the independent software HDLC stack;
//  * the cycle-accurate escape units must match the golden codec under
//    arbitrary input-valid gaps and word fragmentation;
//  * the ACCM-programmed datapath must round-trip control-character-laden
//    payloads.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hdlc/delineation.hpp"
#include "hdlc/frame.hpp"
#include "hdlc/stuffing.hpp"
#include "p5/escape_generate.hpp"
#include "p5/p5.hpp"
#include "rtl/simulator.hpp"
#include "testing/diff_oracle.hpp"
#include "testing/fault.hpp"
#include "testing/property.hpp"

namespace p5::core {
namespace {

/// Build a wire stream of frames and corrupt it; return (stream, payloads).
struct CorruptedStream {
  Bytes wire;
  std::vector<Bytes> sent;
};

CorruptedStream make_corrupted_stream(u64 seed, double byte_corruption_rate) {
  Xoshiro256 rng(seed);
  hdlc::FrameConfig cfg;  // default framing, FCS-32
  CorruptedStream out;
  out.wire.assign(8, hdlc::kFlag);
  for (int i = 0; i < 40; ++i) {
    const Bytes payload = rng.bytes(rng.range(1, 250));
    out.sent.push_back(payload);
    append(out.wire, hdlc::build_wire_frame(cfg, 0x0021, payload));
    for (u64 f = rng.below(3); f > 0; --f) out.wire.push_back(hdlc::kFlag);
  }
  // The shared error model does the damage (one flipped bit per corrupted
  // byte on average: a per-byte rate is 1/8 the per-bit rate).
  testing::FaultyLine line(testing::FaultSpec::ber(byte_corruption_rate / 8.0, seed));
  line.apply(out.wire);
  while (out.wire.size() % 8) out.wire.push_back(hdlc::kFlag);
  return out;
}

/// Good frames according to the software stack.
std::vector<Bytes> software_receive(BytesView wire) {
  hdlc::FrameConfig cfg;
  std::vector<Bytes> good;
  hdlc::Delineator d([&](BytesView f) {
    const auto destuffed = hdlc::destuff(f);
    if (!destuffed.ok) return;
    const auto parsed = hdlc::parse(cfg, destuffed.data);
    if (parsed.ok() && parsed.frame->protocol == 0x0021) good.push_back(parsed.frame->payload);
  });
  d.push(wire);
  return good;
}

/// Good frames according to the P5 receive pipeline.
std::vector<Bytes> hardware_receive(BytesView wire, unsigned lanes) {
  P5Config cfg;
  cfg.lanes = lanes;
  P5 dev(cfg);
  std::vector<Bytes> good;
  dev.set_rx_sink([&](RxDelivery d) {
    if (d.protocol == 0x0021) good.push_back(std::move(d.payload));
  });
  dev.phy_push_rx(wire);
  dev.drain_rx(2000);
  return good;
}

class CorruptionSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorruptionSweep, HardwareAndSoftwareAgreeOnGoodFrames) {
  const double rate = GetParam();
  for (u64 seed = 1; seed <= 5; ++seed) {
    const auto stream = make_corrupted_stream(seed, rate);
    const auto sw = software_receive(stream.wire);
    for (const unsigned lanes : {1u, 4u}) {
      const auto hw = hardware_receive(stream.wire, lanes);
      EXPECT_EQ(hw, sw) << "seed " << seed << " rate " << rate << " lanes " << lanes;
    }
    if (rate == 0.0) {
      EXPECT_EQ(sw.size(), stream.sent.size());
    }
    // FCS-32 must keep corrupt frames out: every accepted payload was sent.
    for (const Bytes& p : sw)
      EXPECT_NE(std::find(stream.sent.begin(), stream.sent.end(), p), stream.sent.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, CorruptionSweep, ::testing::Values(0.0, 0.0005, 0.002, 0.01));

TEST(FuzzProperty, StructuralFaultsKeepAllEnginesInAgreement) {
  // Property-runner version of the sweep above, widened to the structural
  // fault classes (slips, truncation, aborts) the byte-flip sweep can't
  // reach. Replay any failure with the printed P5_TEST_SEED (TESTING.md).
  testing::DiffOracle oracle;
  testing::PropertyOptions opt;
  opt.cases = 150;
  opt.seed = 0xF0225EEDull;
  opt.min_size = 4;
  opt.max_size = 200;
  const auto res = testing::check_property("fuzz_structural_faults", opt,
                                           [&](testing::CaseContext& c) {
    Bytes wire(4, hdlc::kFlag);
    std::vector<testing::DiffOracle::Delivery> sent;
    for (int f = 0; f < 5; ++f) {
      const u16 protocol = testing::gen_protocol(c.rng);
      const Bytes payload = testing::gen_payload(c.rng, 1 + c.rng.below(c.size));
      append(wire, hdlc::build_wire_frame(oracle.config(), protocol, payload));
      sent.push_back({protocol, payload});
    }
    testing::FaultSpec spec;
    spec.seed = c.seed;
    spec.bit_error_rate = 1e-3;
    spec.slip_insert_rate = 0.5;
    spec.slip_delete_rate = 0.5;
    spec.truncate_rate = 0.25;
    spec.abort_rate = 0.5;
    testing::FaultyLine line(spec);
    line.apply(wire);

    const auto rx = oracle.receive(wire);
    if (!rx.agree) return c.fail(rx.diagnosis);
    // FCS-32 keeps the damage out: everything accepted was genuinely sent.
    for (const auto& d : rx.delivered)
      if (std::find(sent.begin(), sent.end(), d) == sent.end())
        return c.fail("an engine accepted a frame that was never sent");
  });
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(FuzzEscape, RandomInputGapsDontPerturbTheStream) {
  // Drive EscapeGenerate with randomly bursty input (valid gaps between
  // words): output must still equal the golden stuffer exactly.
  Xoshiro256 rng(77);
  for (const unsigned lanes : {2u, 4u}) {
    for (int trial = 0; trial < 10; ++trial) {
      rtl::Fifo<rtl::Word> in("in", 1);
      rtl::Fifo<rtl::Word> out("out", 2);
      EscapeGenerate gen("gen", lanes, in, out);
      rtl::Simulator sim;
      sim.add(gen);
      sim.add_channel(in);
      sim.add_channel(out);

      Bytes payload;
      const std::size_t len = rng.range(1, 200);
      for (std::size_t i = 0; i < len; ++i)
        payload.push_back(rng.chance(0.3) ? 0x7E : rng.byte());

      std::size_t off = 0;
      Bytes got;
      bool done = false;
      for (int cycle = 0; cycle < 5000 && !done; ++cycle) {
        const bool gap = rng.chance(0.4);  // bursty upstream
        if (!gap && off < payload.size() && in.can_push()) {
          const std::size_t n = std::min<std::size_t>(lanes, payload.size() - off);
          rtl::Word w = rtl::Word::of(BytesView(payload).subspan(off, n));
          w.sof = off == 0;
          w.eof = off + n >= payload.size();
          in.push(w);
          off += n;
        }
        sim.step();
        while (out.can_pop()) {
          const rtl::Word w = out.pop();
          for (std::size_t i = 0; i < w.count(); ++i) got.push_back(w.lane(i));
          if (w.eof) done = true;
        }
      }
      ASSERT_TRUE(done) << "lanes " << lanes << " trial " << trial;
      EXPECT_EQ(got, hdlc::stuff(payload));
    }
  }
}

TEST(FuzzPhy, ArbitraryRxFragmentationIsTransparent) {
  // Push the same wire image in random-sized chunks: framing recovery must
  // not depend on delivery granularity.
  const auto stream = make_corrupted_stream(9, 0.0);
  const auto reference = software_receive(stream.wire);
  Xoshiro256 rng(10);
  P5Config cfg;
  cfg.lanes = 4;
  P5 dev(cfg);
  std::vector<Bytes> got;
  dev.set_rx_sink([&](RxDelivery d) { got.push_back(std::move(d.payload)); });
  std::size_t off = 0;
  while (off < stream.wire.size()) {
    const std::size_t n = std::min<std::size_t>(rng.range(1, 33), stream.wire.size() - off);
    dev.phy_push_rx(BytesView(stream.wire).subspan(off, n));
    off += n;
  }
  dev.drain_rx(1000);
  EXPECT_EQ(got, reference);
}

TEST(FuzzFusedEncode, EncodeIntoRoundTripsThroughDestuffAndParse) {
  // The fused zero-alloc encoder (FCS + stuffing in one scan) must produce
  // frames the independent destuff + parse pipeline accepts and inverts, for
  // arbitrary framing configs and payloads including all-escape ones.
  Xoshiro256 rng(21);
  hdlc::FrameArena arena;
  for (int trial = 0; trial < 500; ++trial) {
    hdlc::FrameConfig cfg;
    cfg.acfc = rng.chance(0.5);
    cfg.pfc = rng.chance(0.5);
    cfg.fcs = rng.chance(0.5) ? hdlc::FcsKind::kFcs32 : hdlc::FcsKind::kFcs16;
    cfg.accm = rng.chance(0.3) ? hdlc::Accm::async_default() : hdlc::Accm::sonet();
    // Assigned-style protocol: even high octet, odd low octet (RFC 1661 §2).
    const u16 protocol = static_cast<u16>(((rng.byte() & 0xFEu) << 8) | rng.byte() | 1u);

    Bytes payload;
    const std::size_t len = rng.range(1, 300);
    if (rng.chance(0.1)) {
      payload.assign(len, rng.chance(0.5) ? hdlc::kFlag : hdlc::kEscape);  // all-escape
    } else {
      for (std::size_t i = 0; i < len; ++i)
        payload.push_back(rng.chance(0.2) ? hdlc::kEscape : rng.byte());
    }

    // With ACFC a payload that happens to start with address+control octets
    // is legally re-absorbed as an uncompressed header by the parser
    // (RFC 1661 §6.6) — steer clear of that inherent ambiguity.
    if (cfg.acfc && len >= 2 && payload[0] == cfg.address && payload[1] == cfg.control)
      payload[0] ^= 0x10u;

    const BytesView wire = hdlc::encode_into(arena, cfg, protocol, payload);
    ASSERT_GE(wire.size(), 4u);
    ASSERT_EQ(wire.front(), hdlc::kFlag);
    ASSERT_EQ(wire.back(), hdlc::kFlag);
    // No unescaped flag may appear between the delimiters.
    for (std::size_t i = 1; i + 1 < wire.size(); ++i) ASSERT_NE(wire[i], hdlc::kFlag);

    const auto destuffed = hdlc::destuff(wire.subspan(1, wire.size() - 2));
    ASSERT_TRUE(destuffed.ok) << "trial " << trial;
    const auto parsed = hdlc::parse(cfg, destuffed.data);
    ASSERT_TRUE(parsed.ok()) << "trial " << trial;
    EXPECT_EQ(parsed.frame->protocol, protocol);
    EXPECT_EQ(parsed.frame->payload, payload);
  }
}

TEST(Accm, AsyncMapEscapesControlsThroughP5) {
  P5Config cfg;
  cfg.lanes = 4;
  cfg.accm = hdlc::Accm::async_default();
  P5 dev(cfg);
  std::vector<Bytes> got;
  dev.set_rx_sink([&](RxDelivery d) { got.push_back(std::move(d.payload)); });

  // Payload full of control characters (XON/XOFF etc.).
  Bytes payload;
  for (int i = 0; i < 64; ++i) payload.push_back(static_cast<u8>(i % 0x20));
  dev.submit_datagram(0x0021, payload);

  Bytes wire;
  for (int k = 0; k < 200; ++k) {
    const Bytes chunk = dev.phy_pull_tx(4);
    append(wire, chunk);
    dev.phy_push_rx(chunk);
  }
  dev.drain_rx(200);

  // No raw control character anywhere on the wire (flag and escape are both
  // >= 0x20, and every control octet must have been transformed).
  for (const u8 b : wire) EXPECT_GE(b, 0x20) << "unescaped control character on the wire";
  // ...and the payload still round-trips.
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
  // Every one of the 64 control octets cost an escape.
  EXPECT_GE(dev.escape_generate().escapes_inserted(), 64u);
}

TEST(Accm, OamReprogramsTheMap) {
  P5 dev(P5Config{});
  EXPECT_EQ(dev.oam().read(static_cast<u32>(OamReg::kAccm)), 0u);
  dev.oam().write(static_cast<u32>(OamReg::kAccm), 0xFFFFFFFFu);
  EXPECT_EQ(dev.oam().read(static_cast<u32>(OamReg::kAccm)), 0xFFFFFFFFu);

  // The write reprograms the live datapath: control characters submitted
  // after the write get escaped.
  std::vector<Bytes> got;
  dev.set_rx_sink([&](RxDelivery d) { got.push_back(std::move(d.payload)); });
  dev.submit_datagram(0x0021, Bytes(16, 0x11));
  for (int k = 0; k < 200; ++k) dev.phy_push_rx(dev.phy_pull_tx(4));
  dev.drain_rx(100);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Bytes(16, 0x11));
  EXPECT_GE(dev.escape_generate().escapes_inserted(), 16u);
}

}  // namespace
}  // namespace p5::core
