file(REMOVE_RECURSE
  "libp5_netlist.a"
)
