#include "common/md5.hpp"

#include <cstring>
#include <string>

namespace p5 {

namespace {

// Per-round left-rotation amounts (RFC 1321 §3.4).
constexpr u32 kShift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                            5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
                            4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                            6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// T[i] = floor(2^32 * abs(sin(i+1))) — the RFC's sine-derived constants.
constexpr u32 kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391};

[[nodiscard]] constexpr u32 rotl32(u32 v, u32 n) { return (v << n) | (v >> (32 - n)); }

}  // namespace

void Md5::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  length_ = 0;
  buffered_ = 0;
}

void Md5::process_block(const u8* block) {
  u32 m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<u32>(block[4 * i]) | (static_cast<u32>(block[4 * i + 1]) << 8) |
           (static_cast<u32>(block[4 * i + 2]) << 16) | (static_cast<u32>(block[4 * i + 3]) << 24);
  }

  u32 a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (u32 i = 0; i < 64; ++i) {
    u32 f = 0, g = 0;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const u32 tmp = d;
    d = c;
    c = b;
    b += rotl32(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(BytesView data) {
  length_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (data.size() - off >= 64) {
    process_block(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

Md5::Digest Md5::finish() {
  // Padding: 0x80, zeros to 56 mod 64, then the bit length little-endian.
  const u64 bit_length = length_ * 8;
  const u8 pad_byte = 0x80;
  update(BytesView(&pad_byte, 1));
  const u8 zero = 0x00;
  while (buffered_ != 56) update(BytesView(&zero, 1));
  u8 len_le[8];
  for (int i = 0; i < 8; ++i) len_le[i] = static_cast<u8>(bit_length >> (8 * i));
  update(BytesView(len_le, 8));

  Digest out{};
  for (int i = 0; i < 4; ++i) {
    out[4 * i] = static_cast<u8>(state_[i]);
    out[4 * i + 1] = static_cast<u8>(state_[i] >> 8);
    out[4 * i + 2] = static_cast<u8>(state_[i] >> 16);
    out[4 * i + 3] = static_cast<u8>(state_[i] >> 24);
  }
  return out;
}

std::string md5_hex(const Md5::Digest& d) {
  static const char* hex = "0123456789abcdef";
  std::string s;
  s.reserve(32);
  for (const u8 b : d) {
    s.push_back(hex[b >> 4]);
    s.push_back(hex[b & 15]);
  }
  return s;
}

}  // namespace p5
