
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/capture.cpp" "src/net/CMakeFiles/p5_net.dir/capture.cpp.o" "gcc" "src/net/CMakeFiles/p5_net.dir/capture.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/p5_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/p5_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/mapos.cpp" "src/net/CMakeFiles/p5_net.dir/mapos.cpp.o" "gcc" "src/net/CMakeFiles/p5_net.dir/mapos.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/p5_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/p5_net.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hdlc/CMakeFiles/p5_hdlc.dir/DependInfo.cmake"
  "/root/repo/build/src/crc/CMakeFiles/p5_crc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
