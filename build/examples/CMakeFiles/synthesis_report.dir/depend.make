# Empty dependencies file for synthesis_report.
# This may be replaced when dependencies are built.
