#include "sonet/line.hpp"

namespace p5::sonet {

u8 Line::transfer(u8 octet) {
  ++stats_.octets;
  // Gilbert-Elliott state update, per octet.
  if (bad_state_) {
    if (rng_.chance(cfg_.burst_exit)) bad_state_ = false;
  } else {
    if (rng_.chance(cfg_.burst_enter)) bad_state_ = true;
  }
  const double ber = bad_state_ ? cfg_.burst_error_rate : cfg_.bit_error_rate;
  if (ber <= 0.0) return octet;

  u8 out = octet;
  bool hit = false;
  for (int bit = 0; bit < 8; ++bit) {
    if (rng_.chance(ber)) {
      out ^= static_cast<u8>(1u << bit);
      ++stats_.bit_errors;
      hit = true;
    }
  }
  if (hit) ++stats_.octets_hit;
  return out;
}

Bytes Line::transfer(BytesView octets) {
  // Error-free configuration with no chance of entering the burst state:
  // nothing stochastic can happen, so skip the per-octet RNG draws. The
  // observable stream and stats are identical to the octet loop.
  if (cfg_.bit_error_rate <= 0.0 && cfg_.burst_enter <= 0.0 && !bad_state_) {
    stats_.octets += octets.size();
    return Bytes(octets.begin(), octets.end());
  }
  Bytes out;
  out.reserve(octets.size());
  for (const u8 b : octets) out.push_back(transfer(b));
  return out;
}

}  // namespace p5::sonet
