// Deterministic workload generators for the throughput / buffer experiments
// (DESIGN.md E6, E8) and the randomized property tests.
//
// Escape density is the parameter that stresses the paper's byte sorter: each
// flag/escape octet in the payload expands to two on the wire, so generators
// can dial the fraction of must-escape octets from 0 (ASCII-ish traffic) to
// 1.0 (the paper's "all 4 byte locations are flag characters, however
// unlikely" worst case).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/ipv4.hpp"

namespace p5::net {

enum class PayloadPattern : u8 {
  kUniformRandom,  ///< i.i.d. uniform octets (~1/128 escape density)
  kAscii,          ///< printable characters only (zero escape density)
  kFlagDense,      ///< each octet is 0x7E/0x7D with probability `escape_density`
  kAllFlags,       ///< every octet is 0x7E — absolute worst case
  kIncrementing,   ///< counter pattern, easy to eyeball in traces
};

struct TrafficSpec {
  PayloadPattern pattern = PayloadPattern::kUniformRandom;
  double escape_density = 0.0;  ///< only used by kFlagDense
  std::size_t min_len = 40;     ///< datagram length bounds (bytes, incl. IP hdr)
  std::size_t max_len = 1500;
  u64 seed = 1;
};

[[nodiscard]] std::string to_string(PayloadPattern p);

class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficSpec& spec);

  /// Next IP datagram (header + synthesized payload).
  [[nodiscard]] Bytes next_datagram();

  /// Raw payload of exactly `len` octets following the configured pattern.
  [[nodiscard]] Bytes payload(std::size_t len);

  [[nodiscard]] const TrafficSpec& spec() const { return spec_; }

 private:
  TrafficSpec spec_;
  Xoshiro256 rng_;
  u16 next_id_ = 1;
  u8 counter_ = 0;
};

/// Simple Internet mix: 7:4:1 of 40 / 576 / 1500-byte datagrams.
class ImixGenerator {
 public:
  explicit ImixGenerator(u64 seed = 1) : rng_(seed) {}
  [[nodiscard]] Bytes next_datagram();

 private:
  Xoshiro256 rng_;
  u16 next_id_ = 1;
};

/// A batch of datagrams plus aggregate size, for feeding benches.
struct Workload {
  std::vector<Bytes> datagrams;
  std::size_t total_bytes = 0;
};

[[nodiscard]] Workload make_workload(const TrafficSpec& spec, std::size_t count);

}  // namespace p5::net
