#include "transport/conn.hpp"

#include <limits.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace p5::transport {

namespace {

/// Iovecs per sendmsg: enough to drain several pump slices in one syscall
/// without building kilobyte iovec arrays on the stack. IOV_MAX is the
/// kernel's hard cap (1024 on Linux); we stay far inside it.
constexpr std::size_t kMaxIov = IOV_MAX < 64 ? IOV_MAX : 64;

/// Dead RX prefix tolerated before the live remainder is memmoved to the
/// buffer front. Below this the cursor just advances — the common case
/// (every frame parsed) resets the cursors without any copy at all.
constexpr std::size_t kRxCompactBytes = 256 * 1024;

}  // namespace

bool resolve_io_batch(IoBatch configured) {
  if (configured != IoBatch::kAuto) return configured == IoBatch::kOn;
  if (const char* env = std::getenv("P5_TX_BATCH")) {
    return std::strcmp(env, "0") != 0;
  }
  return true;
}

bool Conn::deliver_frames(std::span<const BytesView> frames, bool batched) {
  if (frames.empty()) return true;
  if (on_frames_) {
    if (batched) {
      on_frames_(frames);
      return open();
    }
    // Batch leg off: same hook, single-element spans, frame-at-a-time order.
    for (const BytesView& v : frames) {
      on_frames_(std::span<const BytesView>(&v, 1));
      if (!open()) return false;
    }
    return true;
  }
  if (on_frame_) {
    for (const BytesView& v : frames) {
      on_frame_(v);
      if (!open()) return false;
    }
  }
  return open();
}

// ---------------------------------------------------------------- StreamConn

StreamConn::StreamConn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg, Fd fd,
                       bool connecting, ChunkPool* pool)
    : Conn(loop, stats, cfg), fd_(std::move(fd)) {
  P5_EXPECTS(fd_.valid());
  batch_ = resolve_io_batch(cfg_.batch);
  if (pool != nullptr) {
    pool_ = pool;
  } else {
    own_pool_ = std::make_unique<ChunkPool>(&stats_);
    pool_ = own_pool_.get();
  }
  if (cfg_.so_sndbuf_bytes > 0) {
    (void)::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDBUF, &cfg_.so_sndbuf_bytes, sizeof(int));
  }
  established_ = !connecting;
  last_rx_ms_ = loop_.now_ms();
  loop_.add_fd(fd_.get(), connecting ? kWritable : kReadable,
               [this](u32 events) { handle_events(events); });
  if (established_) {
    // The timer must not outlive the conn: an owner may close()/destroy an
    // accepted conn (e.g. admission reject) before the zero-delay fires.
    open_timer_ = loop_.add_timer(0, [this] {
      open_timer_ = 0;
      if (open() && on_open_) on_open_();
    });
  }
}

bool StreamConn::send_frame(BytesView payload) {
  if (!writable()) return false;
  ChunkRef chunk = pool_->acquire(4 + payload.size());
  Bytes& wire = chunk.data();
  put_be32(wire, static_cast<u32>(payload.size()));
  append(wire, payload);
  queued_bytes_ += wire.size();
  queue_.push_back(std::move(chunk));
  stats_.on_send_enqueued(payload.size());
  stats_.note_queue_depth(queued_bytes_);
  // Batched mode stages: the queue drains through one scatter-gather syscall
  // at the next flush()/writability event instead of one send per chunk.
  if (!batch_ || queue_.size() >= kMaxIov) flush_write();
  if (open()) update_interest();
  return true;
}

void StreamConn::flush() {
  if (!open()) return;
  if (!queue_.empty()) flush_write();
  if (open()) update_interest();
}

void StreamConn::request_drain() {
  if (!open() || draining_) return;
  draining_ = true;
  flush_write();
  if (open()) update_interest();
}

void StreamConn::handle_events(u32 events) {
  if (!established_) {
    if (events & (kWritable | kIoError)) finish_connect();
    return;
  }
  if (events & kIoError) {
    close_internal(true);
    return;
  }
  if (events & kWritable) {
    flush_write();
    if (!open()) return;
  }
  if (events & kReadable) {
    read_some();
    if (!open()) return;
  }
  update_interest();
}

void StreamConn::finish_connect() {
  const int err = connect_error(fd_.get());
  if (err != 0) {
    close_internal(true);
    return;
  }
  established_ = true;
  last_rx_ms_ = loop_.now_ms();
  update_interest();
  if (on_open_) on_open_();
}

void StreamConn::flush_write() {
  // One scatter-gather sendmsg spans up to kMaxIov queued chunks (a single
  // iovec — the exact legacy syscall pattern — when batching is off). A
  // partial write leaves head_off_ mid-chunk and resumes there.
  const std::size_t cap = batch_ ? kMaxIov : 1;
  while (!queue_.empty()) {
    std::array<iovec, kMaxIov> iov;
    std::size_t n_iov = 0;
    std::size_t attempted = 0;
    std::size_t off = head_off_;
    for (const ChunkRef& c : queue_) {
      if (n_iov == cap) break;
      const Bytes& d = c.data();
      iov[n_iov].iov_base = const_cast<u8*>(d.data() + off);
      iov[n_iov].iov_len = d.size() - off;
      attempted += iov[n_iov].iov_len;
      ++n_iov;
      off = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = n_iov;
    const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_internal(true);
      return;
    }
    stats_.tx_syscall();
    std::size_t left = static_cast<std::size_t>(n);
    queued_bytes_ -= left;
    while (left > 0) {
      const Bytes& head = queue_.front().data();
      const std::size_t head_left = head.size() - head_off_;
      if (left < head_left) {  // kernel buffer full mid-chunk: resume here
        head_off_ += left;
        left = 0;
        break;
      }
      left -= head_left;
      stats_.on_sent(head.size() - 4);
      head_off_ = 0;
      queue_.pop_front();
    }
    if (static_cast<std::size_t>(n) < attempted) return;
  }
  if (draining_ && !drained_notified_) {
    drained_notified_ = true;
    (void)::shutdown(fd_.get(), SHUT_WR);
    if (on_drained_) on_drained_();
  }
}

void StreamConn::ensure_rx_room() {
  if (rx_off_ == rx_len_) {
    rx_off_ = rx_len_ = 0;
    // Fully drained: cap the capacity a large burst left behind so an idle
    // conn doesn't pin megabytes.
    const std::size_t retain = std::max(cfg_.rx_retain_bytes, cfg_.read_chunk_bytes);
    if (rx_buf_.size() > retain) {
      rx_buf_.resize(retain);
      rx_buf_.shrink_to_fit();
    }
  } else if (rx_off_ > 0 &&
             (rx_off_ >= kRxCompactBytes || rx_buf_.size() - rx_len_ < cfg_.read_chunk_bytes)) {
    std::memmove(rx_buf_.data(), rx_buf_.data() + rx_off_, rx_len_ - rx_off_);
    rx_len_ -= rx_off_;
    rx_off_ = 0;
  }
  if (rx_buf_.size() < rx_len_ + cfg_.read_chunk_bytes) {
    rx_buf_.resize(std::max(rx_len_ + cfg_.read_chunk_bytes, rx_buf_.size() * 2));
  }
}

void StreamConn::read_some() {
  // Bounded burst: at most 4 slices per readable event so one fast peer
  // cannot monopolise a run_once slice.
  for (int burst = 0; burst < 4; ++burst) {
    ensure_rx_room();
    const ssize_t n = ::recv(fd_.get(), rx_buf_.data() + rx_len_, cfg_.read_chunk_bytes, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_internal(true);
      return;
    }
    if (n == 0) {  // orderly EOF from the peer
      close_internal(true);
      return;
    }
    stats_.rx_syscall();
    rx_len_ += static_cast<std::size_t>(n);
    last_rx_ms_ = loop_.now_ms();
    if (!parse_frames()) return;  // proto error / callback closed us
    if (static_cast<std::size_t>(n) < cfg_.read_chunk_bytes) return;
  }
}

bool StreamConn::parse_frames() {
  frame_views_.clear();
  bool bad_length = false;
  std::size_t off = rx_off_;
  while (rx_len_ - off >= 4) {
    const u32 len = get_be32(rx_buf_, off);
    if (len > cfg_.max_frame_bytes) {
      bad_length = true;
      break;
    }
    if (rx_len_ - off - 4 < len) break;
    stats_.on_received(len);
    frame_views_.emplace_back(rx_buf_.data() + off + 4, len);
    off += 4 + len;
  }
  rx_off_ = off;
  if (rx_off_ == rx_len_) rx_off_ = rx_len_ = 0;  // nothing left: free reset
  // The views alias rx_buf_, which nothing mutates until the callbacks
  // return (send_frame only touches the TX queue).
  if (!deliver_frames(frame_views_, batch_)) return false;
  if (bad_length) {
    stats_.proto_error();
    close_internal(true);
    return false;
  }
  return true;
}

void StreamConn::update_interest() {
  u32 interest = kReadable;
  if (!queue_.empty()) interest |= kWritable;
  loop_.modify_fd(fd_.get(), interest);
}

void StreamConn::close_internal(bool notify) {
  if (closing_ || !fd_.valid()) return;
  closing_ = true;
  if (open_timer_ != 0) {
    loop_.cancel_timer(open_timer_);
    open_timer_ = 0;
  }
  loop_.remove_fd(fd_.get());
  fd_.reset();
  // Exact loss accounting: every enqueued chunk that never made it fully
  // onto the wire (including a partially written head) is charged as lost.
  stats_.add_frames_lost(queue_.size());
  queue_.clear();
  queued_bytes_ = 0;
  head_off_ = 0;
  established_ = false;
  if (notify && on_closed_) on_closed_();
  closing_ = false;
}

// ----------------------------------------------------------------- DgramConn

DgramConn::DgramConn(EventLoop& loop, TransportTelemetry& stats, ConnConfig cfg, Fd fd,
                     bool learn_peer, ChunkPool* pool)
    : Conn(loop, stats, cfg), fd_(std::move(fd)), has_peer_(!learn_peer) {
  P5_EXPECTS(fd_.valid());
  batch_ = resolve_io_batch(cfg_.batch);
  if (pool != nullptr) {
    pool_ = pool;
  } else {
    own_pool_ = std::make_unique<ChunkPool>(&stats_);
    pool_ = own_pool_.get();
  }
  if (cfg_.so_sndbuf_bytes > 0) {
    (void)::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDBUF, &cfg_.so_sndbuf_bytes, sizeof(int));
  }
  last_rx_ms_ = loop_.now_ms();
  if (batch_) {
    rx_slots_.resize(kDgramBatch);
    for (Bytes& slot : rx_slots_) slot.resize(65536);
  } else {
    rx_buf_.resize(65536);
  }
  loop_.add_fd(fd_.get(), kReadable, [this](u32 events) {
    if (events & kIoError) {
      close_internal(true);
      return;
    }
    if (events & kWritable) {
      flush_stage();
      if (!open()) return;
    }
    if (events & kReadable) {
      read_some();
      if (!open()) return;
    }
    update_interest();
  });
  open_timer_ = loop_.add_timer(0, [this] {
    open_timer_ = 0;
    if (writable() && on_open_) on_open_();  // learn_peer side opens on first RX
  });
}

bool DgramConn::send_frame(BytesView payload) {
  if (!writable()) return false;
  stats_.on_send_enqueued(payload.size());
  if (!batch_) {
    const ssize_t n = ::send(fd_.get(), payload.data(), payload.size(), MSG_NOSIGNAL);
    if (n >= 0) stats_.tx_syscall();
    if (n == static_cast<ssize_t>(payload.size())) {
      stats_.on_sent(payload.size());
    } else {
      // Kernel refused or truncated — the datagram is gone. The self-sync
      // scrambler on the far side absorbs the hole; we just account for it.
      stats_.add_frames_lost(1);
    }
    return true;
  }
  ChunkRef chunk = pool_->acquire(payload.size());
  append(chunk.data(), payload);
  stage_bytes_ += payload.size();
  stage_.push_back(std::move(chunk));
  if (stage_.size() >= kDgramBatch) {
    flush_stage();
  } else {
    update_interest();  // the always-writable socket drains us next run_once
  }
  return true;
}

void DgramConn::flush() {
  if (!open()) return;
  flush_stage();
  if (open()) update_interest();
}

void DgramConn::flush_stage() {
  while (!stage_.empty()) {
    const unsigned n_msgs = static_cast<unsigned>(std::min(stage_.size(), kDgramBatch));
    std::array<mmsghdr, kDgramBatch> msgs{};
    std::array<iovec, kDgramBatch> iovs;
    for (unsigned i = 0; i < n_msgs; ++i) {
      const Bytes& d = stage_[i].data();
      iovs[i].iov_base = const_cast<u8*>(d.data());
      iovs[i].iov_len = d.size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int sent = ::sendmmsg(fd_.get(), msgs.data(), n_msgs, 0);
    if (sent < 0) {
      if (errno == EINTR) continue;
      // Fire-and-forget: EAGAIN and hard errors alike cost the staged batch;
      // the far deframer rides through the gap.
      stats_.add_frames_lost(stage_.size());
      stage_.clear();
      stage_bytes_ = 0;
      return;
    }
    stats_.tx_syscall();
    for (unsigned i = 0; i < static_cast<unsigned>(sent); ++i) {
      const std::size_t want = stage_[i].data().size();
      stage_bytes_ -= want;
      if (msgs[i].msg_len == want) {
        stats_.on_sent(want);
      } else {
        stats_.add_frames_lost(1);
      }
    }
    stage_.erase(stage_.begin(), stage_.begin() + sent);
    // A short return means the next datagram would block; the retry either
    // moves it or lands in the EAGAIN branch above.
  }
}

void DgramConn::request_drain() {
  if (!open()) return;
  flush_stage();
  // Nothing else buffers; a datagram conn drains instantly.
  if (open() && on_drained_) on_drained_();
}

void DgramConn::read_some() {
  if (!batch_) {
    read_some_serial();
    return;
  }
  for (int burst = 0; burst < 4; ++burst) {
    std::array<mmsghdr, kDgramBatch> msgs{};
    std::array<iovec, kDgramBatch> iovs;
    std::array<sockaddr_in, kDgramBatch> addrs{};
    for (std::size_t i = 0; i < kDgramBatch; ++i) {
      iovs[i].iov_base = rx_slots_[i].data();
      iovs[i].iov_len = rx_slots_[i].size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
    }
    const int n = ::recvmmsg(fd_.get(), msgs.data(), kDgramBatch, 0, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN and transient ICMP errors alike: wait for the next event
    }
    if (n == 0) return;
    stats_.rx_syscall();
    last_rx_ms_ = loop_.now_ms();
    if (!has_peer_) {
      // Listener side: lock onto the first talker so sends have a target.
      if (::connect(fd_.get(), reinterpret_cast<sockaddr*>(&addrs[0]),
                    msgs[0].msg_hdr.msg_namelen) == 0) {
        has_peer_ = true;
        if (on_open_) on_open_();
        if (!open()) return;
      }
    }
    frame_views_.clear();
    for (unsigned i = 0; i < static_cast<unsigned>(n); ++i) {
      const std::size_t len = msgs[i].msg_len;
      if (len == 0) continue;  // zero-length datagram carries nothing useful
      stats_.on_received(len);
      frame_views_.emplace_back(rx_slots_[i].data(), len);
    }
    if (!deliver_frames(frame_views_, /*batched=*/true)) return;
    if (n < static_cast<int>(kDgramBatch)) return;
  }
}

void DgramConn::read_some_serial() {
  for (int burst = 0; burst < 16; ++burst) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const ssize_t n = ::recvfrom(fd_.get(), rx_buf_.data(), rx_buf_.size(), 0,
                                 reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN and transient ICMP errors alike: wait for the next event
    }
    stats_.rx_syscall();
    last_rx_ms_ = loop_.now_ms();
    if (!has_peer_) {
      // Listener side: lock onto the first talker so sends have a target.
      if (::connect(fd_.get(), reinterpret_cast<sockaddr*>(&peer), peer_len) == 0) {
        has_peer_ = true;
        if (on_open_) on_open_();
        if (!open()) return;
      }
    }
    if (n == 0) continue;  // zero-length datagram carries nothing useful
    stats_.on_received(static_cast<std::size_t>(n));
    const BytesView view(rx_buf_.data(), static_cast<std::size_t>(n));
    if (!deliver_frames(std::span<const BytesView>(&view, 1), /*batched=*/false)) return;
  }
}

void DgramConn::update_interest() {
  u32 interest = kReadable;
  if (!stage_.empty()) interest |= kWritable;
  loop_.modify_fd(fd_.get(), interest);
}

void DgramConn::close_internal(bool notify) {
  if (closing_ || !fd_.valid()) return;
  closing_ = true;
  if (open_timer_ != 0) {
    loop_.cancel_timer(open_timer_);
    open_timer_ = 0;
  }
  loop_.remove_fd(fd_.get());
  fd_.reset();
  // Staged datagrams were accepted into frames_in; charge them lost so the
  // ledger closes exactly.
  stats_.add_frames_lost(stage_.size());
  stage_.clear();
  stage_bytes_ = 0;
  has_peer_ = false;
  if (notify && on_closed_) on_closed_();
  closing_ = false;
}

}  // namespace p5::transport
