#include "crc/parallel_crc.hpp"

#include <bit>

#include "common/check.hpp"

namespace p5::crc {

ParallelCrc::ParallelCrc(const CrcSpec& spec, unsigned data_bits)
    : spec_(spec), data_bits_(data_bits) {
  P5_EXPECTS(spec.width >= 1 && spec.width <= 32);
  P5_EXPECTS(data_bits >= 8 && data_bits <= 64 && data_bits % 8 == 0);

  const std::size_t cols = spec.width + data_bits;

  // Symbolic execution of the bit-serial LFSR: each register bit is a GF(2)
  // linear combination over [state bits ; data bits].
  std::vector<Gf2Vec> state_sym;
  state_sym.reserve(spec.width);
  for (std::size_t i = 0; i < spec.width; ++i) state_sym.push_back(Gf2Vec::unit(cols, i));

  const unsigned bytes = data_bits / 8;
  for (unsigned byte = 0; byte < bytes; ++byte) {
    // state ^= data_byte (low 8 register bits).
    for (unsigned bit = 0; bit < 8; ++bit) {
      Gf2Vec data_var = Gf2Vec::unit(cols, spec.width + byte * 8 + bit);
      state_sym[bit] ^= data_var;
    }
    // Eight LSB-first shift steps with polynomial feedback.
    for (unsigned step = 0; step < 8; ++step) {
      Gf2Vec feedback = state_sym[0];
      for (std::size_t i = 0; i + 1 < spec.width; ++i) state_sym[i] = state_sym[i + 1];
      state_sym[spec.width - 1] = Gf2Vec(cols);
      for (std::size_t i = 0; i < spec.width; ++i)
        if ((spec.poly >> i) & 1u) state_sym[i] ^= feedback;
    }
  }

  matrix_ = Gf2Matrix(spec.width, cols);
  for (std::size_t r = 0; r < spec.width; ++r) matrix_.row(r) = state_sym[r];

  // Precompute fast-path masks.
  masks_.resize(spec.width);
  for (std::size_t r = 0; r < spec.width; ++r) {
    u32 sm = 0;
    u64 dm = 0;
    for (std::size_t c = 0; c < spec.width; ++c)
      if (matrix_.get(r, c)) sm |= (u32{1} << c);
    for (std::size_t c = 0; c < data_bits; ++c)
      if (matrix_.get(r, spec.width + c)) dm |= (u64{1} << c);
    masks_[r] = RowMasks{sm, dm};
  }
}

u32 ParallelCrc::advance(u32 state, BytesView block) const {
  P5_EXPECTS(block.size() == data_bits_ / 8);
  u64 data = 0;
  for (std::size_t i = 0; i < block.size(); ++i) data |= static_cast<u64>(block[i]) << (8 * i);
  u32 next = 0;
  for (std::size_t r = 0; r < spec_.width; ++r) {
    const auto& m = masks_[r];
    const unsigned parity =
        (std::popcount(static_cast<u64>(state & m.state_mask)) + std::popcount(data & m.data_mask)) &
        1u;
    next |= (static_cast<u32>(parity) << r);
  }
  return next;
}

u32 ParallelCrc::update(u32 state, BytesView data) const {
  const std::size_t block_bytes = data_bits_ / 8;
  std::size_t off = 0;
  for (; off + block_bytes <= data.size(); off += block_bytes)
    state = advance(state, data.subspan(off, block_bytes));
  for (; off < data.size(); ++off) state = bitwise_step(spec_, state, data[off]);
  return state;
}

std::size_t ParallelCrc::max_row_terms() const {
  std::size_t m = 0;
  for (std::size_t r = 0; r < matrix_.rows(); ++r) m = std::max(m, row_terms(r));
  return m;
}

}  // namespace p5::crc
