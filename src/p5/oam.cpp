#include "p5/oam.hpp"

namespace p5::core {

void Oam::set_counter_source(OamReg reg, std::function<u64()> getter) {
  const auto idx = static_cast<std::size_t>(reg);
  if (idx < counters_.size()) counters_[idx] = std::move(getter);
}

u32 Oam::read(u32 reg_index) const {
  switch (static_cast<OamReg>(reg_index)) {
    case OamReg::kId:
      return kOamDeviceId;
    case OamReg::kConfig:
      return static_cast<u32>(cfg_.address) | (static_cast<u32>(cfg_.control) << 8) |
             (cfg_.fcs32 ? (u32{1} << 16) : 0);
    case OamReg::kIntPending:
      return pending_;
    case OamReg::kIntMask:
      return mask_;
    case OamReg::kMaxPayload:
      return static_cast<u32>(cfg_.max_payload);
    case OamReg::kAccm:
      return cfg_.accm.map();
    default: {
      const auto idx = static_cast<std::size_t>(reg_index);
      if (idx < counters_.size() && counters_[idx])
        return static_cast<u32>(counters_[idx]());
      return 0;
    }
  }
}

void Oam::write(u32 reg_index, u32 value) {
  switch (static_cast<OamReg>(reg_index)) {
    case OamReg::kConfig:
      cfg_.address = static_cast<u8>(value);
      cfg_.control = static_cast<u8>(value >> 8);
      cfg_.fcs32 = (value >> 16) & 1u;
      if (reconfigure_) reconfigure_(cfg_);
      break;
    case OamReg::kIntPending:
      pending_ &= ~value;  // write-one-to-clear
      break;
    case OamReg::kIntMask:
      mask_ = value;
      break;
    case OamReg::kMaxPayload:
      cfg_.max_payload = value;
      if (reconfigure_) reconfigure_(cfg_);
      break;
    case OamReg::kAccm:
      cfg_.accm = hdlc::Accm(value);
      if (reconfigure_) reconfigure_(cfg_);
      break;
    default:
      break;  // read-only or unmapped: ignored
  }
}

}  // namespace p5::core
