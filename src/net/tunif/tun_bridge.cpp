#include "net/tunif/tun_bridge.hpp"

#include "ppp/protocols.hpp"

namespace p5::net::tunif {

using ppp::kProtoIpv4;
using ppp::kProtoVjComp;
using ppp::kProtoVjUncomp;

TunBridge::TunBridge(transport::EventLoop& loop, TunDevice& tun,
                     core::SonetEndpoint& ep, TunBridgeConfig cfg)
    : loop_(loop), tun_(tun), ep_(ep), cfg_(cfg) {
  if (cfg_.vj) {
    vj_comp_ = std::make_unique<ppp::vj::Compressor>();
    vj_decomp_ = std::make_unique<ppp::vj::Decompressor>();
  }
  if (tun_.is_open()) {
    loop_.add_fd(tun_.fd(), transport::kReadable, [this](u32) { drain_tun(); });
    fd_registered_ = true;
  }
}

TunBridge::~TunBridge() {
  if (fd_registered_) loop_.remove_fd(tun_.fd());
}

std::size_t TunBridge::drain_tun() {
  std::size_t read = 0;
  Bytes packet;
  while (true) {
    const ReadStatus st = tun_.read_packet(packet);
    if (st != ReadStatus::kPacket) break;
    ++read;
    ++stats_.tun_rx_packets;
    stats_.tun_rx_bytes += packet.size();
    if (tun_rx_tap_) tun_rx_tap_(packet);
    (void)offer(std::move(packet));
    packet = Bytes{};
  }
  return read;
}

bool TunBridge::offer(Bytes&& datagram) {
  u16 protocol = kProtoIpv4;
  Bytes packet;
  if (vj_comp_) {
    const ppp::vj::Compressor::Result r = vj_comp_->compress(datagram);
    if (r.cls == ppp::vj::PacketClass::kCompressedTcp) protocol = kProtoVjComp;
    if (r.cls == ppp::vj::PacketClass::kUncompressedTcp) protocol = kProtoVjUncomp;
    packet = r.packet;
  } else {
    packet = std::move(datagram);
  }
  if (!backlog_.empty()) {
    // Keep order: new datagrams go behind the parked ones.
    if (backlog_.size() >= cfg_.backlog_limit) {
      ++stats_.dropped_backlog;
      return false;
    }
    backlog_.push_back({protocol, std::move(packet)});
    return true;
  }
  if (ep_.submit_datagram(protocol, packet)) {
    ++stats_.submitted;
    return true;
  }
  if (backlog_.size() >= cfg_.backlog_limit) {
    ++stats_.dropped_backlog;
    return false;
  }
  backlog_.push_back({protocol, std::move(packet)});
  return true;
}

std::size_t TunBridge::pump() {
  while (!backlog_.empty()) {
    Parked& p = backlog_.front();
    if (!ep_.submit_datagram(p.protocol, p.packet)) break;
    ++stats_.submitted;
    backlog_.pop_front();
  }
  std::size_t written = 0;
  while (auto d = ep_.reap_datagram()) {
    deliver_to_kernel(d->protocol, d->payload);
    ++written;
  }
  return written;
}

void TunBridge::deliver_to_kernel(u16 protocol, BytesView payload) {
  Bytes decompressed;
  BytesView datagram = payload;
  switch (protocol) {
    case kProtoIpv4:
      break;
    case kProtoVjComp:
    case kProtoVjUncomp: {
      if (!vj_decomp_) {
        ++stats_.dropped_non_ip;  // far end compresses, we don't: no mapping
        return;
      }
      const auto cls = protocol == kProtoVjComp
                           ? ppp::vj::PacketClass::kCompressedTcp
                           : ppp::vj::PacketClass::kUncompressedTcp;
      auto out = vj_decomp_->decompress(cls, payload);
      if (!out) {
        ++stats_.vj_tossed;
        return;
      }
      decompressed = std::move(*out);
      datagram = decompressed;
      break;
    }
    default:
      ++stats_.dropped_non_ip;
      return;
  }
  if (delivered_tap_) delivered_tap_(datagram);
  if (!tun_.write_packet(datagram)) {
    ++stats_.tun_write_failures;
    return;
  }
  ++stats_.delivered_packets;
  stats_.delivered_bytes += datagram.size();
}

}  // namespace p5::net::tunif
