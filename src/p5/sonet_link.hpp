// Full-stack integration: two P5 devices joined by an SDH/SONET path —
// the "IP over SDH/SONET" of the paper's title.
//
//   P5(A).TX -> SPE framer -> scrambled STS-Nc frames -> optical line model
//            -> deframer -> P5(B).RX          (and the mirror direction)
//
// The x^43+1 self-synchronous payload scrambler (RFC 2615) runs over the
// PPP octet stream inside the SPE. The line model injects seeded bit
// errors, exercising the FCS/abort/delineation recovery paths end to end.
#pragma once

#include <functional>
#include <memory>

#include "fastpath/escape_simd.hpp"
#include "p5/p5.hpp"
#include "sonet/line.hpp"
#include "sonet/scrambler.hpp"
#include "sonet/spe.hpp"

namespace p5::core {

class P5SonetLink {
 public:
  P5SonetLink(const P5Config& cfg, sonet::StsSpec sts, const sonet::LineConfig& line_cfg);
  /// Asymmetric link: distinct configurations per end (e.g. a line-card
  /// tributary whose two ends carry different programmed MAPOS addresses).
  P5SonetLink(const P5Config& a_cfg, const P5Config& b_cfg, sonet::StsSpec sts,
              const sonet::LineConfig& line_cfg);

  [[nodiscard]] P5& a() { return *a_; }
  [[nodiscard]] P5& b() { return *b_; }

  /// Host-side software escape engine matching the A end's programmed ACCM:
  /// the dispatch tables are derived once here, at link construction (the
  /// software analogue of the OAM write that loads the P5's Escape Generate
  /// tables), so hosts that pre-frame or cross-check datagrams in software —
  /// the line-card fabric, the differential oracle — never pay table
  /// derivation per frame.
  [[nodiscard]] const fastpath::EscapeEngine& host_escape_engine() const {
    return host_engine_;
  }

  /// Move one SONET frame in each direction (A->B and B->A).
  void exchange_frames(std::size_t frames = 1);

  /// Optional per-direction mutation of each SONET frame *after* the line
  /// model and before the deframer — the insertion point for fault injection
  /// (testing::FaultyLine is directly callable as a tap). Either tap may be
  /// empty. A tap runs on whichever thread pumps exchange_frames, so give
  /// each direction its own stateful tap object.
  using LineTap = std::function<void(Bytes&)>;
  void set_line_tap(LineTap a_to_b, LineTap b_to_a) {
    tap_ab_ = std::move(a_to_b);
    tap_ba_ = std::move(b_to_a);
  }

  [[nodiscard]] const sonet::DeframerStats& a_to_b_stats() const { return deframer_b_->stats(); }
  [[nodiscard]] const sonet::DeframerStats& b_to_a_stats() const { return deframer_a_->stats(); }
  [[nodiscard]] const sonet::LineStats& line_ab_stats() const { return line_ab_.stats(); }
  [[nodiscard]] const sonet::StsSpec& sts() const { return sts_; }

 private:
  sonet::StsSpec sts_;
  std::unique_ptr<P5> a_;
  std::unique_ptr<P5> b_;
  fastpath::EscapeEngine host_engine_;  ///< derived once from the A-side ACCM

  sonet::SelfSyncScrambler43 scr_a_tx_, scr_b_tx_, scr_a_rx_, scr_b_rx_;
  Bytes rx_scratch_a_, rx_scratch_b_;  ///< reusable descramble buffers
  std::unique_ptr<sonet::SonetFramer> framer_a_, framer_b_;
  std::unique_ptr<sonet::SonetDeframer> deframer_a_, deframer_b_;
  sonet::Line line_ab_, line_ba_;
  LineTap tap_ab_, tap_ba_;
};

}  // namespace p5::core
