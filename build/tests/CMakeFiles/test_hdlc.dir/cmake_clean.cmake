file(REMOVE_RECURSE
  "CMakeFiles/test_hdlc.dir/test_hdlc.cpp.o"
  "CMakeFiles/test_hdlc.dir/test_hdlc.cpp.o.d"
  "test_hdlc"
  "test_hdlc.pdb"
  "test_hdlc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
