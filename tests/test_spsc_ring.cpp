// linecard::SpscRing — deterministic edge cases (wraparound, full, empty,
// capacity rounding, move-only payloads) plus the two-thread stress test the
// threaded line-card runtime stands on: millions of blocking push/pop ops
// with strict order and checksum verification. Run the suite under
// -fsanitize=thread to prove the ring's acquire/release protocol racefree.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "linecard/spsc_ring.hpp"

namespace p5::linecard {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
  EXPECT_EQ(SpscRing<int>(257).capacity(), 512u);
}

TEST(SpscRing, EmptyRingPopsNothing) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size_approx(), 0u);
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_EQ(ring.push_stalls(), 0u);
}

TEST(SpscRing, FullRingRejectsAndCountsStalls) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_EQ(ring.size_approx(), 4u);
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(100));
  EXPECT_EQ(ring.push_stalls(), 2u);
  // One slot freed -> exactly one more push fits.
  EXPECT_EQ(ring.try_pop().value(), 0);
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));
  EXPECT_EQ(ring.push_stalls(), 3u);
}

TEST(SpscRing, FailedPushLeavesValueIntact) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto v = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(v)));
  ASSERT_NE(v, nullptr);  // not consumed by the failed push
  EXPECT_EQ(*v, 3);
  EXPECT_EQ(*ring.try_pop().value(), 1);
  EXPECT_TRUE(ring.try_push(std::move(v)));
  EXPECT_EQ(v, nullptr);  // consumed by the successful push
}

TEST(SpscRing, WraparoundPreservesFifoOrder) {
  // Capacity 8; run the indices far past several wraps with a mixed
  // push/pop cadence and check strict FIFO at every step.
  SpscRing<u64> ring(8);
  u64 next_push = 0, next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    const std::size_t burst = 1 + (round % 8);
    for (std::size_t i = 0; i < burst; ++i)
      if (ring.try_push(u64(next_push))) ++next_push;
    const std::size_t drain = 1 + ((round * 3) % 8);
    for (std::size_t i = 0; i < drain; ++i) {
      auto v = ring.try_pop();
      if (!v) break;
      ASSERT_EQ(*v, next_pop);
      ++next_pop;
    }
  }
  while (auto v = ring.try_pop()) {
    ASSERT_EQ(*v, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GT(next_push, 2000u);  // well past wraparound
}

TEST(SpscRing, DrainAfterInterleavedTraffic) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(int(i)));
  EXPECT_EQ(ring.try_pop().value(), 0);
  EXPECT_EQ(ring.try_pop().value(), 1);
  for (int i = 3; i < 6; ++i) ASSERT_TRUE(ring.try_push(int(i)));  // wraps, now full
  EXPECT_FALSE(ring.try_push(99));
  for (int expect = 2; expect < 6; ++expect) EXPECT_EQ(ring.try_pop().value(), expect);
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.empty());
}

/// The stress payload: a value plus a marker that must travel with it (a
/// stale or torn slot betrays itself on the consumer side).
struct Item {
  u64 seq = 0;
  u64 tag = 0;  ///< seq * kTagMult, checked on the consumer side
};
constexpr u64 kTagMult = 0x9E3779B97F4A7C15ull;

TEST(SpscRing, TwoThreadStressMillionsOfOpsKeepOrderAndChecksum) {
  constexpr u64 kItems = 2'000'000;
  SpscRing<Item> ring(1024);

  u64 producer_sum = 0, consumer_sum = 0;
  bool order_ok = true;

  std::thread producer([&] {
    for (u64 i = 0; i < kItems; ++i) {
      producer_sum += i ^ (i * kTagMult);
      ring.push(Item{i, i * kTagMult});
    }
  });
  std::thread consumer([&] {
    for (u64 i = 0; i < kItems; ++i) {
      const Item it = ring.pop();
      order_ok = order_ok && it.seq == i && it.tag == i * kTagMult;
      consumer_sum += it.seq ^ it.tag;
    }
  });
  producer.join();
  consumer.join();

  EXPECT_TRUE(order_ok);
  EXPECT_EQ(producer_sum, consumer_sum);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TwoThreadStressWithHeapPayloads) {
  // Same protocol with an allocating payload: TSan/ASan-visible if a slot
  // is handed over before its contents are published.
  constexpr u64 kItems = 200'000;
  SpscRing<std::unique_ptr<u64>> ring(64);

  std::thread producer([&] {
    for (u64 i = 0; i < kItems; ++i) ring.push(std::make_unique<u64>(i));
  });
  u64 mismatches = 0;
  std::thread consumer([&] {
    for (u64 i = 0; i < kItems; ++i) {
      const auto p = ring.pop();
      if (!p || *p != i) ++mismatches;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace p5::linecard
