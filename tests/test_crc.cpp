// CRC substrate tests: GF(2) algebra, bitwise/table/parallel agreement for
// every datapath width, and the RFC 1662 residue ("good FCS") properties
// the P5 receiver's frame check relies on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crc/crc_reference.hpp"
#include "crc/crc_table.hpp"
#include "crc/gf2.hpp"
#include "crc/parallel_crc.hpp"

namespace p5::crc {
namespace {

// ---- GF(2) algebra ----

TEST(Gf2Vec, SetGetXor) {
  Gf2Vec a(100), b(100);
  a.set(3, true);
  a.set(77, true);
  b.set(77, true);
  a ^= b;
  EXPECT_TRUE(a.get(3));
  EXPECT_FALSE(a.get(77));
  EXPECT_EQ(a.popcount(), 1u);
}

TEST(Gf2Vec, DotProduct) {
  Gf2Vec a(64), b(64);
  a.set(1, true);
  a.set(2, true);
  b.set(2, true);
  b.set(3, true);
  EXPECT_TRUE(a.dot(b));  // one shared bit -> odd parity
  b.set(1, true);
  EXPECT_FALSE(a.dot(b));  // two shared bits -> even
}

TEST(Gf2Matrix, IdentityIsMulNeutral) {
  Xoshiro256 rng(5);
  Gf2Matrix m(16, 16);
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c) m.set(r, c, rng.chance(0.5));
  const Gf2Matrix i = Gf2Matrix::identity(16);
  EXPECT_EQ(m.mul(i), m);
  EXPECT_EQ(i.mul(m), m);
}

TEST(Gf2Matrix, PowMatchesRepeatedMul) {
  Xoshiro256 rng(9);
  Gf2Matrix m(8, 8);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c) m.set(r, c, rng.chance(0.4));
  Gf2Matrix manual = Gf2Matrix::identity(8);
  for (int i = 0; i < 5; ++i) manual = manual.mul(m);
  EXPECT_EQ(m.pow(5), manual);
}

TEST(Gf2Matrix, MulVectorAssociates) {
  Xoshiro256 rng(11);
  Gf2Matrix a(12, 12), b(12, 12);
  Gf2Vec x(12);
  for (std::size_t r = 0; r < 12; ++r) {
    x.set(r, rng.chance(0.5));
    for (std::size_t c = 0; c < 12; ++c) {
      a.set(r, c, rng.chance(0.5));
      b.set(r, c, rng.chance(0.5));
    }
  }
  EXPECT_EQ(a.mul(b).mul(x), a.mul(b.mul(x)));
}

TEST(Gf2Matrix, RankOfIdentityAndSingular) {
  EXPECT_EQ(Gf2Matrix::identity(10).rank(), 10u);
  Gf2Matrix m(4, 4);
  m.set(0, 0, true);
  m.set(1, 0, true);  // duplicate column-space
  EXPECT_EQ(m.rank(), 1u);
}

TEST(Gf2Matrix, TransposeInvolution) {
  Xoshiro256 rng(3);
  Gf2Matrix m(7, 13);
  for (std::size_t r = 0; r < 7; ++r)
    for (std::size_t c = 0; c < 13; ++c) m.set(r, c, rng.chance(0.5));
  EXPECT_EQ(m.transpose().transpose(), m);
}

// ---- reference CRC known-answer tests ----

TEST(BitwiseCrc, Crc32KnownAnswer) {
  // CRC-32/IEEE of "123456789" is 0xCBF43926.
  const Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(bitwise_crc(kFcs32, data), 0xCBF43926u);
}

TEST(BitwiseCrc, Crc16KnownAnswer) {
  // CRC-16/X.25 of "123456789" is 0x906E.
  const Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(bitwise_crc(kFcs16, data), 0x906Eu);
}

TEST(BitwiseCrc, EmptyBuffer) {
  EXPECT_EQ(bitwise_crc(kFcs32, Bytes{}), kFcs32.init ^ kFcs32.xorout);
}

/// RFC 1662: appending the complemented FCS (LSB first) leaves the magic
/// residue in the register.
TEST(BitwiseCrc, ResidueProperty32) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data = rng.bytes(rng.range(1, 300));
    const u32 fcs = bitwise_crc(kFcs32, data);
    for (int i = 0; i < 4; ++i) data.push_back(static_cast<u8>(fcs >> (8 * i)));
    EXPECT_TRUE(bitwise_check(kFcs32, data));
    EXPECT_EQ(bitwise_update(kFcs32, kFcs32.init, data), kFcs32.residue);
  }
}

TEST(BitwiseCrc, ResidueProperty16) {
  Xoshiro256 rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data = rng.bytes(rng.range(1, 300));
    const u32 fcs = bitwise_crc(kFcs16, data);
    data.push_back(static_cast<u8>(fcs));
    data.push_back(static_cast<u8>(fcs >> 8));
    EXPECT_TRUE(bitwise_check(kFcs16, data));
  }
}

TEST(BitwiseCrc, DetectsSingleBitErrors) {
  Xoshiro256 rng(23);
  Bytes data = rng.bytes(64);
  const u32 good = bitwise_crc(kFcs32, data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<u8>(1 << bit);
      EXPECT_NE(bitwise_crc(kFcs32, data), good);
      data[byte] ^= static_cast<u8>(1 << bit);
    }
  }
}

// ---- table CRC ----

TEST(TableCrc, MatchesBitwise) {
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const Bytes data = rng.bytes(rng.range(0, 200));
    EXPECT_EQ(fcs32().crc(data), bitwise_crc(kFcs32, data));
    EXPECT_EQ(fcs16().crc(data), bitwise_crc(kFcs16, data));
  }
}

TEST(TableCrc, IncrementalEqualsWhole) {
  Xoshiro256 rng(32);
  const Bytes data = rng.bytes(333);
  u32 state = kFcs32.init;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, data.size() - i);
    state = fcs32().update(state, BytesView(data).subspan(i, n));
  }
  EXPECT_EQ(state ^ kFcs32.xorout, fcs32().crc(data));
}

// ---- parallel matrix CRC: the P5 CRC core ----

class ParallelCrcWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelCrcWidths, MatchesBitwiseOnBlockMultiples) {
  const unsigned bits = GetParam();
  const ParallelCrc pc(kFcs32, bits);
  Xoshiro256 rng(100 + bits);
  for (int trial = 0; trial < 40; ++trial) {
    const Bytes data = rng.bytes((bits / 8) * rng.range(0, 50));
    EXPECT_EQ(pc.crc(data), bitwise_crc(kFcs32, data)) << "width=" << bits;
  }
}

TEST_P(ParallelCrcWidths, MatchesBitwiseOnArbitraryLengths) {
  const unsigned bits = GetParam();
  const ParallelCrc pc(kFcs32, bits);
  Xoshiro256 rng(200 + bits);
  for (int trial = 0; trial < 40; ++trial) {
    const Bytes data = rng.bytes(rng.range(0, 257));
    EXPECT_EQ(pc.crc(data), bitwise_crc(kFcs32, data)) << "width=" << bits;
  }
}

TEST_P(ParallelCrcWidths, Fcs16Agrees) {
  const unsigned bits = GetParam();
  const ParallelCrc pc(kFcs16, bits);
  Xoshiro256 rng(300 + bits);
  for (int trial = 0; trial < 40; ++trial) {
    const Bytes data = rng.bytes(rng.range(0, 100));
    EXPECT_EQ(pc.crc(data), bitwise_crc(kFcs16, data));
  }
}

TEST_P(ParallelCrcWidths, CheckAcceptsSealedFrames) {
  const unsigned bits = GetParam();
  const ParallelCrc pc(kFcs32, bits);
  Xoshiro256 rng(400 + bits);
  Bytes data = rng.bytes(99);
  const u32 fcs = pc.crc(data);
  for (int i = 0; i < 4; ++i) data.push_back(static_cast<u8>(fcs >> (8 * i)));
  EXPECT_TRUE(pc.check(data));
  data[5] ^= 0x10;
  EXPECT_FALSE(pc.check(data));
}

INSTANTIATE_TEST_SUITE_P(AllWidths, ParallelCrcWidths,
                         ::testing::Values(8u, 16u, 24u, 32u, 40u, 48u, 56u, 64u));

TEST(ParallelCrc, MatrixShape) {
  const ParallelCrc pc(kFcs32, 32);
  EXPECT_EQ(pc.matrix().rows(), 32u);
  EXPECT_EQ(pc.matrix().cols(), 64u);
  // Each output bit depends on at least one input; the state-transition part
  // (first 32 columns) must be full rank (the LFSR is invertible).
  Gf2Matrix state_part(32, 32);
  for (std::size_t r = 0; r < 32; ++r)
    for (std::size_t c = 0; c < 32; ++c) state_part.set(r, c, pc.matrix().get(r, c));
  EXPECT_EQ(state_part.rank(), 32u);
}

TEST(ParallelCrc, WiderMatricesHaveMoreTerms) {
  // Paper Table 2: the 32x32 matrix costs more logic than the 8x32.
  const ParallelCrc m8(kFcs32, 8);
  const ParallelCrc m32(kFcs32, 32);
  EXPECT_GT(m32.total_terms(), m8.total_terms());
  EXPECT_GE(m32.max_row_terms(), m8.max_row_terms());
}

TEST(ParallelCrc, AdvanceRequiresExactBlock) {
  const ParallelCrc pc(kFcs32, 32);
  EXPECT_THROW((void)pc.advance(0, Bytes{1, 2, 3}), ContractViolation);
}

TEST(ParallelCrc, AgreesWithTableOnLongStream) {
  const ParallelCrc pc(kFcs32, 32);
  Xoshiro256 rng(77);
  const Bytes data = rng.bytes(64 * 1024 + 3);
  EXPECT_EQ(pc.crc(data), fcs32().crc(data));
}

}  // namespace
}  // namespace p5::crc
