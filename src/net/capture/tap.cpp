#include "net/capture/tap.hpp"

#include <ctime>

namespace p5::net::capture {

CaptureTap::CaptureTap(PcapMeta meta) : meta_(meta) {}

CaptureTap::~CaptureTap() { close(); }

bool CaptureTap::open(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  file_mode_ = true;
  return writer_.create(path, meta_);
}

void CaptureTap::record(BytesView frame) {
  std::lock_guard<std::mutex> lk(mu_);
  record_locked(now_ns_locked(), frame);
}

void CaptureTap::record_at(u64 ts_ns, BytesView frame) {
  std::lock_guard<std::mutex> lk(mu_);
  record_locked(ts_ns, frame);
}

std::function<void(Bytes&)> CaptureTap::line_tap() {
  return [this](Bytes& frame) { record(frame); };
}

TapStats CaptureTap::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<PcapRecord> CaptureTap::take_records() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<PcapRecord> out;
  out.swap(records_);
  return out;
}

void CaptureTap::close() {
  std::lock_guard<std::mutex> lk(mu_);
  writer_.flush();
  writer_.close();
}

void CaptureTap::record_locked(u64 ts_ns, BytesView frame) {
  if (max_records_ && stats_.records >= max_records_) {
    ++stats_.drops;
    return;
  }
  PcapRecord rec;
  rec.ts_sec = static_cast<u32>(ts_ns / 1'000'000'000ull);
  rec.ts_nsec = static_cast<u32>(ts_ns % 1'000'000'000ull);
  rec.orig_len = static_cast<u32>(frame.size());
  rec.data.assign(frame.begin(), frame.end());
  if (file_mode_) {
    if (!writer_.write(rec)) {
      ++stats_.drops;
      return;
    }
  } else {
    records_.push_back(std::move(rec));
  }
  ++stats_.records;
  stats_.bytes += frame.size();
}

u64 CaptureTap::now_ns_locked() {
  if (wall_clock_) {
    std::timespec ts{};
    std::timespec_get(&ts, TIME_UTC);
    return static_cast<u64>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<u64>(ts.tv_nsec);
  }
  // Synthetic clock: strictly increasing, 1 µs apart, so usec-precision
  // files keep distinct timestamps and runs are byte-reproducible.
  const u64 now = synth_ns_;
  synth_ns_ += 1000;
  return now;
}

}  // namespace p5::net::capture
