// The datapath token exchanged between P5 pipeline stages.
//
// A Word models one clock cycle's worth of bus content: up to kMaxLanes octets
// (lane 0 is the first octet on the wire), a lane count, and frame-boundary
// sideband flags exactly as a hardware bus would carry them (start-of-frame,
// end-of-frame, abort).
#pragma once

#include <array>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace p5::rtl {

class Word {
 public:
  static constexpr std::size_t kMaxLanes = 8;

  Word() = default;

  /// Build a word from the first `n` bytes of `data` (n <= kMaxLanes).
  static Word of(BytesView data) {
    P5_EXPECTS(data.size() <= kMaxLanes);
    Word w;
    for (const u8 b : data) w.push(b);
    return w;
  }

  void push(u8 b) {
    P5_EXPECTS(count_ < kMaxLanes);
    lanes_[count_++] = b;
  }

  [[nodiscard]] u8 lane(std::size_t i) const {
    P5_EXPECTS(i < count_);
    return lanes_[i];
  }
  void set_lane(std::size_t i, u8 v) {
    P5_EXPECTS(i < count_);
    lanes_[i] = v;
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  // Frame sideband flags.
  bool sof = false;    ///< first word of a frame
  bool eof = false;    ///< last word of a frame
  bool abort = false;  ///< frame aborted mid-flight; discard accumulated state

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Word& o) const {
    if (count_ != o.count_ || sof != o.sof || eof != o.eof || abort != o.abort) return false;
    for (std::size_t i = 0; i < count_; ++i)
      if (lanes_[i] != o.lanes_[i]) return false;
    return true;
  }

 private:
  std::array<u8, kMaxLanes> lanes_{};
  std::size_t count_ = 0;
};

}  // namespace p5::rtl
