// Gate-level Escape Generate / Escape Detect units (paper Section 3).
//
// Two architectures, matching the paper:
//
//  * lanes == 1 (the 8-bit P5): a stall design. When the input octet must be
//    escaped the unit emits 0x7D, halts the input for one cycle, and emits
//    the XOR-0x20 octet next cycle. A handful of comparators and one
//    pending flip-flop — the paper's 22-LUT / 6-FF module.
//
//  * lanes >= 2 (the 32-bit P5 and the width-ablation points): the pipelined
//    byte sorter. Per cycle, each lane is classified, lane target positions
//    are computed by a prefix-sum over the escape flags, the expanded
//    2*lanes-slot word is built by the slot-decision crossbar, and the slots
//    are merged into a 3*lanes-octet resynchronisation shift-queue from
//    which `lanes` octets leave per cycle. Backpressure (in_ready) engages
//    when the queue cannot take a worst-case expansion — the paper's
//    "extremely low resynchronisation buffer and backpressure scheme".
//    Escape Detect is the mirror image: escape markers are deleted, the
//    following octet is XORed, survivors are compacted (bubbles close up)
//    through a 2*lanes-octet queue.
//
// I/O contract (both units, all widths):
//   inputs : in[8*lanes] (lane 0 first on the wire), in_valid
//   outputs: in_ready, out[8*lanes], out_valid
//
// The same algorithm runs word-for-word in the cycle-accurate model
// (src/p5/escape_generate, src/p5/escape_detect); the equivalence tests in
// tests/netlist drive both against the RFC 1662 golden stuffer.
#pragma once

#include "netlist/netlist.hpp"

namespace p5::netlist::circuits {

[[nodiscard]] Netlist make_escape_generate_circuit(unsigned lanes);
[[nodiscard]] Netlist make_escape_detect_circuit(unsigned lanes);

/// Resynchronisation queue depth used by the generate unit (octets).
/// 3*lanes is the smallest deadlock-free size: a queue holding lanes-1
/// octets (too few to emit) must still absorb a worst-case fully-escaped
/// word of 2*lanes octets — the paper's "extremely low resynchronisation
/// buffer" (12 octets for the 32-bit P5).
[[nodiscard]] constexpr std::size_t generate_buffer_cells(unsigned lanes) { return 3u * lanes; }
/// Queue depth used by the detect unit (octets).
[[nodiscard]] constexpr std::size_t detect_buffer_cells(unsigned lanes) { return 2u * lanes; }

}  // namespace p5::netlist::circuits
