// E9 — google-benchmark micro-benchmarks of the software substrates: CRC
// engines (bitwise / table / parallel matrix), octet stuffing, the SONET
// scramblers and framer, the cycle-accurate model's step rate, and the
// gate-level netlist simulator. These document the simulation cost of the
// reproduction itself (simulated-seconds-per-wall-second), not paper claims.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crc/crc_reference.hpp"
#include "crc/crc_table.hpp"
#include "crc/parallel_crc.hpp"
#include "hdlc/stuffing.hpp"
#include "net/traffic.hpp"
#include "netlist/circuits/escape_circuits.hpp"
#include "p5/p5.hpp"
#include "sonet/scrambler.hpp"
#include "sonet/spe.hpp"

namespace {

using namespace p5;

const Bytes& sample_data() {
  static const Bytes data = Xoshiro256(42).bytes(64 * 1024);
  return data;
}

void BM_CrcBitwise(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(crc::bitwise_crc(crc::kFcs32, sample_data()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * sample_data().size()));
}
BENCHMARK(BM_CrcBitwise);

void BM_CrcTable(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(crc::fcs32().crc(sample_data()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * sample_data().size()));
}
BENCHMARK(BM_CrcTable);

void BM_CrcParallelMatrix(benchmark::State& state) {
  const crc::ParallelCrc pc(crc::kFcs32, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(pc.crc(sample_data()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * sample_data().size()));
}
BENCHMARK(BM_CrcParallelMatrix)->Arg(8)->Arg(32)->Arg(64);

void BM_Stuff(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(hdlc::stuff(sample_data()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * sample_data().size()));
}
BENCHMARK(BM_Stuff);

void BM_Destuff(benchmark::State& state) {
  const Bytes wire = hdlc::stuff(sample_data());
  for (auto _ : state) benchmark::DoNotOptimize(hdlc::destuff(wire));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_Destuff);

void BM_Scrambler43(benchmark::State& state) {
  sonet::SelfSyncScrambler43 scr;
  for (auto _ : state) benchmark::DoNotOptimize(scr.scramble(sample_data()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * sample_data().size()));
}
BENCHMARK(BM_Scrambler43);

void BM_SonetFrameBuild(benchmark::State& state) {
  Xoshiro256 rng(7);
  sonet::SonetFramer framer(sonet::kSts3c, [&rng](std::size_t n) { return rng.bytes(n); });
  for (auto _ : state) benchmark::DoNotOptimize(framer.next_frame());
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * sonet::kSts3c.frame_bytes()));
}
BENCHMARK(BM_SonetFrameBuild);

void BM_P5LoopbackCycleRate(benchmark::State& state) {
  core::P5Config cfg;
  cfg.lanes = static_cast<unsigned>(state.range(0));
  core::P5 dev(cfg);
  dev.set_rx_sink([](core::RxDelivery) {});
  net::TrafficGenerator gen(net::TrafficSpec{});
  u64 simulated_cycles = 0;
  for (auto _ : state) {
    if (dev.tx_control().pending() < 4) dev.submit_datagram(0x0021, gen.next_datagram());
    const u64 before = dev.cycle();
    dev.phy_push_rx(dev.phy_pull_tx(cfg.lanes));
    simulated_cycles += dev.cycle() - before;
  }
  state.counters["sim_cycles/s"] =
      benchmark::Counter(static_cast<double>(simulated_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_P5LoopbackCycleRate)->Arg(1)->Arg(4);

void BM_NetlistSimEscapeGenerate32(benchmark::State& state) {
  const netlist::Netlist nl = netlist::circuits::make_escape_generate_circuit(4);
  netlist::Netlist::Sim sim(nl);
  Xoshiro256 rng(9);
  u64 cycles = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) sim.set_input(i, rng.chance(0.5));
    sim.eval();
    sim.clock();
    ++cycles;
  }
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(cycles * nl.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetlistSimEscapeGenerate32);

}  // namespace

BENCHMARK_MAIN();
