file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_escape_generate_reorg.dir/bench_fig5_escape_generate_reorg.cpp.o"
  "CMakeFiles/bench_fig5_escape_generate_reorg.dir/bench_fig5_escape_generate_reorg.cpp.o.d"
  "bench_fig5_escape_generate_reorg"
  "bench_fig5_escape_generate_reorg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_escape_generate_reorg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
