// Precomputed byte-stepping for the SONET section scrambler.
//
// The x^7+x^6+1 frame-synchronous scrambler has a 7-bit state, so one
// 128-entry table maps each state to the next eight keystream bits and the
// state eight bit-steps later — turning the per-bit LFSR loop into a single
// lookup per octet. The table is generated from the same bit-serial recurrence
// the seed implementation used (and is differentially tested against it).
#pragma once

#include <array>

#include "common/types.hpp"

namespace p5::fastpath {

struct FrameScramblerStep {
  u8 keystream;  ///< next 8 PRBS bits, MSB transmitted first
  u8 next;       ///< LFSR state after those 8 bit-steps
};

/// State-transition table for the x^7+x^6+1 LFSR, one entry per 7-bit state.
[[nodiscard]] const std::array<FrameScramblerStep, 128>& frame_scrambler_steps();

}  // namespace p5::fastpath
