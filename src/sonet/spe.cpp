#include "sonet/spe.hpp"

#include <algorithm>
#include <cstring>

namespace p5::sonet {

namespace {

// TOH byte coordinates (0-indexed rows).
constexpr std::size_t kRowA1A2 = 0;
constexpr std::size_t kRowB1 = 1;
constexpr std::size_t kRowH1 = 3;
constexpr std::size_t kRowB2 = 4;

// Pointer bytes for a frame-aligned SPE (pointer value 0, NDF normal).
constexpr u8 kH1Normal = 0x60;
constexpr u8 kH2Normal = 0x00;
// Concatenation indication for the 2nd..Nth constituent pointers.
constexpr u8 kH1Concat = 0x9B;
constexpr u8 kH2Concat = 0xFF;

constexpr u8 kJ0 = 0x01;

// POH rows within the single path-overhead column.
constexpr std::size_t kPohJ1 = 0;
constexpr std::size_t kPohB3 = 1;
constexpr std::size_t kPohC2 = 2;

}  // namespace

u8 bip8(BytesView data) {
  // XOR is associative and order-free: fold eight octets at a time, then
  // collapse the word — identical parity to the octet loop.
  u64 acc = 0;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    u64 w;
    std::memcpy(&w, data.data() + i, 8);
    acc ^= w;
  }
  acc ^= acc >> 32;
  acc ^= acc >> 16;
  acc ^= acc >> 8;
  u8 p = static_cast<u8>(acc);
  for (; i < data.size(); ++i) p ^= data[i];
  return p;
}

SonetFramer::SonetFramer(StsSpec spec, std::function<Bytes(std::size_t)> payload_source)
    : spec_(spec), payload_source_(std::move(payload_source)) {
  P5_EXPECTS(spec.n % 3 == 0 && spec.n >= 3);
}

Bytes SonetFramer::next_frame() {
  const std::size_t cols = spec_.columns();
  const std::size_t toh = spec_.toh_columns();
  const std::size_t stuff = spec_.fixed_stuff_columns();
  Bytes frame(spec_.frame_bytes(), 0);

  auto at = [&](std::size_t row, std::size_t col) -> u8& { return frame[row * cols + col]; };

  // --- Transport overhead ---
  for (std::size_t i = 0; i < spec_.n; ++i) at(kRowA1A2, i) = kA1;
  for (std::size_t i = 0; i < spec_.n; ++i) at(kRowA1A2, spec_.n + i) = kA2;
  at(kRowA1A2, 2 * spec_.n) = kJ0;
  at(kRowB1, 0) = b1_;  // BIP-8 over the previous frame (after scrambling)
  at(kRowH1, 0) = kH1Normal;
  at(kRowH1, spec_.n) = kH2Normal;
  for (std::size_t i = 1; i < spec_.n; ++i) {
    at(kRowH1, i) = kH1Concat;
    at(kRowH1, spec_.n + i) = kH2Concat;
  }

  // --- Path overhead + payload ---
  at(kPohJ1, toh) = 0x89;  // path trace filler octet
  at(kPohB3, toh) = b3_;   // BIP-8 over the previous SPE
  at(kPohC2, toh) = kC2PppScrambled;

  const std::size_t payload_per_row = spec_.payload_columns();
  const Bytes payload = payload_source_(kRows * payload_per_row);
  P5_ENSURES(payload.size() == kRows * payload_per_row);
  for (std::size_t row = 0; row < kRows; ++row)
    std::memcpy(&at(row, toh + 1 + stuff), payload.data() + row * payload_per_row,
                payload_per_row);

  // --- Path BIP-8 for the *next* frame: over this SPE (TOH excluded) ---
  u8 b3 = 0;
  for (std::size_t row = 0; row < kRows; ++row)
    b3 ^= bip8(BytesView(&at(row, toh), cols - toh));
  b3_ = b3;

  // --- Line BIP-8 (B2) over rows 3..8 of this frame pre-scramble ---
  const u8 b2 = bip8(BytesView(&at(kRowH1, 0), (kRows - kRowH1) * cols));
  at(kRowB2, 0) = b2;

  // --- Frame-synchronous scrambling: everything except row-0 TOH ---
  FrameScrambler scr;
  scr.reset();
  scr.apply(frame, toh, frame.size());

  // --- Section BIP-8 for the next frame: over this frame post-scramble ---
  b1_ = bip8(frame);

  ++frames_;
  return frame;
}

SonetDeframer::SonetDeframer(StsSpec spec, std::function<void(BytesView)> payload_sink)
    : spec_(spec), payload_sink_(std::move(payload_sink)) {
  P5_EXPECTS(spec.n % 3 == 0 && spec.n >= 3);
}

void SonetDeframer::push(u8 octet) {
  window_.push_back(octet);

  if (state_ == State::kHunt) {
    // Slide a frame-sized window until an A1...A1 A2...A2 prefix lines up.
    const std::size_t need = 2 * spec_.n;
    while (window_.size() >= need) {
      bool aligned = true;
      for (std::size_t i = 0; i < spec_.n && aligned; ++i) aligned = window_[i] == kA1;
      for (std::size_t i = 0; i < spec_.n && aligned; ++i)
        aligned = window_[spec_.n + i] == kA2;
      if (aligned) {
        state_ = State::kSync;
        if (ever_synced_) ++stats_.resyncs;
        ever_synced_ = true;
        bad_alignments_ = 0;
        have_b1_ref_ = false;
        break;
      }
      window_.erase(window_.begin());
      ++stats_.discarded_octets;
    }
    if (state_ == State::kHunt) return;
  }

  if (window_.size() >= spec_.frame_bytes()) process_frame();
}

void SonetDeframer::push(BytesView octets) {
  std::size_t i = 0;
  while (i < octets.size()) {
    if (state_ == State::kHunt) {
      // Alignment search stays octet-at-a-time (it is rare and stateful).
      push(octets[i++]);
      continue;
    }
    // In sync the per-octet path only appends until a whole frame is
    // buffered: bulk-copy straight to the frame boundary instead.
    const std::size_t need = spec_.frame_bytes() - window_.size();
    const std::size_t take = std::min(need, octets.size() - i);
    window_.insert(window_.end(), octets.begin() + static_cast<std::ptrdiff_t>(i),
                   octets.begin() + static_cast<std::ptrdiff_t>(i + take));
    i += take;
    if (window_.size() >= spec_.frame_bytes()) process_frame();
  }
}

void SonetDeframer::process_frame() {
  const std::size_t cols = spec_.columns();
  const std::size_t toh = spec_.toh_columns();
  const std::size_t stuff = spec_.fixed_stuff_columns();

  Bytes frame(window_.begin(), window_.begin() + static_cast<std::ptrdiff_t>(spec_.frame_bytes()));
  window_.erase(window_.begin(), window_.begin() + static_cast<std::ptrdiff_t>(spec_.frame_bytes()));

  // Alignment check on every frame; two consecutive misses -> loss of frame.
  bool aligned = true;
  for (std::size_t i = 0; i < spec_.n && aligned; ++i) aligned = frame[i] == kA1;
  for (std::size_t i = 0; i < spec_.n && aligned; ++i) aligned = frame[spec_.n + i] == kA2;
  if (!aligned) {
    if (++bad_alignments_ >= 2) {
      state_ = State::kHunt;
      // Re-hunt inside what we already buffered plus this frame.
      Bytes rehunt = std::move(frame);
      rehunt.insert(rehunt.end(), window_.begin(), window_.end());
      window_.clear();
      have_b1_ref_ = false;
      for (const u8 b : rehunt) push(b);
      return;
    }
  } else {
    bad_alignments_ = 0;
  }

  // Section BIP check uses the scrambled image.
  const u8 b1_of_this_frame = bip8(frame);

  // Descramble (row-0 TOH is never scrambled).
  FrameScrambler scr;
  scr.reset();
  scr.apply(frame, toh, frame.size());

  if (have_b1_ref_ && frame[1 * cols + 0] != expected_b1_) ++stats_.b1_errors;
  expected_b1_ = b1_of_this_frame;
  have_b1_ref_ = true;

  // Path BIP over this SPE, checked against the *next* frame's B3.
  if (stats_.frames_in_sync > 0 && frame[1 * cols + toh] != expected_b3_) ++stats_.b3_errors;
  u8 b3 = 0;
  for (std::size_t row = 0; row < kRows; ++row)
    b3 ^= bip8(BytesView(frame.data() + row * cols + toh, cols - toh));
  expected_b3_ = b3;

  // Extract the PPP payload stream (one contiguous run per row).
  const std::size_t payload_per_row = spec_.payload_columns();
  Bytes payload(spec_.payload_bytes_per_frame());
  for (std::size_t row = 0; row < kRows; ++row)
    std::memcpy(payload.data() + row * payload_per_row,
                frame.data() + row * cols + toh + 1 + stuff, payload_per_row);

  ++stats_.frames_in_sync;
  payload_sink_(payload);
}

}  // namespace p5::sonet
