// HDLC-like PPP frame assembly and parsing (RFC 1662 framing around RFC 1661
// fields), with the programmability knobs the paper's OAM exposes:
//   * programmable Address octet (MAPOS compatibility, RFC 2171);
//   * 1- or 2-octet Protocol field (PFC negotiation);
//   * Address/Control field compression (ACFC);
//   * FCS-16 or FCS-32 (paper uses FCS-32 "for accuracy purposes").
#pragma once

#include <optional>

#include "common/types.hpp"
#include "crc/crc_spec.hpp"
#include "hdlc/accm.hpp"

namespace p5::hdlc {

inline constexpr u8 kDefaultAddress = 0xFF;  ///< all-stations
inline constexpr u8 kDefaultControl = 0x03;  ///< unnumbered information (UI)

enum class FcsKind : u8 { kFcs16, kFcs32 };

struct FrameConfig {
  u8 address = kDefaultAddress;  ///< programmable for MAPOS unicast/multicast
  u8 control = kDefaultControl;
  bool acfc = false;          ///< compress (omit) address+control on transmit
  bool pfc = false;           ///< 1-octet protocol field when protocol <= 0xFF
  FcsKind fcs = FcsKind::kFcs32;
  Accm accm = Accm::sonet();
  std::size_t max_payload = 1500;  ///< negotiated MRU (RFC 1661 default)

  [[nodiscard]] const crc::CrcSpec& crc_spec() const {
    return fcs == FcsKind::kFcs32 ? crc::kFcs32 : crc::kFcs16;
  }
  [[nodiscard]] std::size_t fcs_bytes() const { return fcs == FcsKind::kFcs32 ? 4 : 2; }
};

/// Frame *content*: the octets between the flags, before stuffing:
/// [address control] protocol payload fcs.
[[nodiscard]] Bytes encapsulate(const FrameConfig& cfg, u16 protocol, BytesView payload);

/// Reusable scratch for the zero-allocation encoder. Steady state (same-size
/// frames through the same arena) performs no heap allocation at all: the
/// wire buffer is cleared and refilled in place.
class FrameArena {
 public:
  /// The last encoded wire image (valid until the next encode_into call).
  [[nodiscard]] const Bytes& wire() const { return wire_; }

 private:
  friend BytesView encode_into(FrameArena&, const FrameConfig&, u16, BytesView);
  friend Bytes build_wire_frame(const FrameConfig&, u16, BytesView);
  Bytes wire_;
};

/// Fused single-pass encoder: computes the FCS and stuffs in one scan of the
/// payload, writing flag + stuff(content) + flag straight into the arena with
/// no intermediate content/stuffed buffers. The wire image is byte-identical
/// to build_wire_frame. Returns a view into the arena, valid until the next
/// call with the same arena.
[[nodiscard]] BytesView encode_into(FrameArena& arena, const FrameConfig& cfg, u16 protocol,
                                    BytesView payload);

/// Full wire image: flag + stuff(content) + flag. Convenience wrapper over
/// encode_into that returns an owned buffer.
[[nodiscard]] Bytes build_wire_frame(const FrameConfig& cfg, u16 protocol, BytesView payload);

enum class ParseError : u8 {
  kTooShort,
  kBadFcs,
  kBadAddress,
  kBadControl,
  kTooLong,
};

struct ParsedFrame {
  u16 protocol = 0;
  Bytes payload;
};

struct ParseResult {
  std::optional<ParsedFrame> frame;
  std::optional<ParseError> error;
  [[nodiscard]] bool ok() const { return frame.has_value(); }
};

/// Parse de-stuffed frame content (as produced by encapsulate / received by
/// the delineator+destuffer). Accepts ACFC/PFC-compressed headers whether or
/// not the config enables them on transmit, per RFC 1661 robustness rules.
[[nodiscard]] ParseResult parse(const FrameConfig& cfg, BytesView content);

}  // namespace p5::hdlc
