# Empty dependencies file for p5_common.
# This may be replaced when dependencies are built.
