#include "transport/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

namespace p5::transport {

namespace {

bool fill_sockaddr(const SocketAddr& addr, sockaddr_in& sa) {
  sa = {};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  const std::string host = addr.host == "localhost" || addr.host.empty() ? "127.0.0.1" : addr.host;
  return ::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) == 1;
}

Fd make_socket(int type) {
  Fd fd(::socket(AF_INET, type, 0));
  if (fd.valid() && !set_nonblocking(fd.get())) fd.reset();
  return fd;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::optional<SocketAddr> parse_addr(const std::string& s) {
  SocketAddr addr;
  std::string port_part = s;
  const auto colon = s.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) addr.host = s.substr(0, colon);
    port_part = s.substr(colon + 1);
  }
  if (port_part.empty()) return std::nullopt;
  char* end = nullptr;
  const long port = std::strtol(port_part.c_str(), &end, 10);
  if (*end != '\0' || port < 0 || port > 65535) return std::nullopt;
  addr.port = static_cast<u16>(port);
  return addr;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Fd tcp_listen(const SocketAddr& addr, int backlog, bool reuseport) {
  sockaddr_in sa;
  if (!fill_sockaddr(addr, sa)) return Fd();
  Fd fd = make_socket(SOCK_STREAM);
  if (!fd.valid()) return fd;
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      fd.reset();  // shard fan-out silently collapsing to one listener is worse
      return fd;
    }
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd.get(), backlog) != 0) {
    fd.reset();
  }
  return fd;
}

Fd tcp_accept(int listen_fd) {
  Fd fd(::accept(listen_fd, nullptr, nullptr));
  if (fd.valid()) {
    if (!set_nonblocking(fd.get())) {
      fd.reset();
      return fd;
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Fd tcp_connect(const SocketAddr& addr, bool& in_progress) {
  in_progress = false;
  sockaddr_in sa;
  if (!fill_sockaddr(addr, sa)) return Fd();
  Fd fd = make_socket(SOCK_STREAM);
  if (!fd.valid()) return fd;
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) return fd;
  if (errno == EINPROGRESS || errno == EINTR) {
    in_progress = true;
    return fd;
  }
  fd.reset();
  return fd;
}

int connect_error(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

Fd udp_bind(const SocketAddr& addr) {
  sockaddr_in sa;
  if (!fill_sockaddr(addr, sa)) return Fd();
  Fd fd = make_socket(SOCK_DGRAM);
  if (!fd.valid()) return fd;
  // A SONET chunk per datagram bursts well past the default budgets; roomy
  // buffers on both directions keep loopback tests loss-free so observed
  // drops are the injected ones — the sendmmsg leg can put a whole staged
  // batch on the wire in one call, which needs SO_SNDBUF headroom too.
  const int buf = 1 << 20;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) fd.reset();
  return fd;
}

Fd udp_connect(const SocketAddr& addr) {
  sockaddr_in sa;
  if (!fill_sockaddr(addr, sa)) return Fd();
  Fd fd = make_socket(SOCK_DGRAM);
  if (!fd.valid()) return fd;
  const int buf = 1 << 20;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) fd.reset();
  return fd;
}

u16 local_port(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) return 0;
  return ntohs(sa.sin_port);
}

}  // namespace p5::transport
